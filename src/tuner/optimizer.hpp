// The optimizer front-ends — the system the paper evaluates.
//
// An Autotuner owns a target platform and produces OptimizationPlans via a
// single entry point, `tune(matrix, TuneOptions)`, whose policy selects the
// strategy:
//   profile-guided  — run the bound micro-benchmarks, classify (Fig. 4),
//                     apply the mapped optimizations jointly
//   feature-guided  — extract features, query the pre-trained tree
//   oracle          — perfect optimizer: best of the 15 candidate sets
//   trivial         — run every candidate (5 singles, or all 15) and keep
//                     the best; pays for every trial (paper Table V)
// Every plan carries both the optimized SpMV time and the preprocessing
// cost t_pre charged by the amortization analysis
//   N_iters,min = t_pre / (t_vendor - t_optimizer)        (paper §IV-D).
// When trace collection is on (TuneOptions::collect_trace, defaulting to
// obs::enabled()), the plan additionally carries an obs::TuneTrace — the
// full decision record (features, bound ratios, classes, per-phase cost).
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "machine/machine_spec.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "tuner/bounds.hpp"
#include "tuner/feature_classifier.hpp"
#include "tuner/optimizations.hpp"
#include "tuner/profile_classifier.hpp"

namespace sparta {

/// Preprocessing cost model, in units the amortization study needs.
/// Time-valued constants are expressed as multiples of the baseline SpMV
/// time (so they scale with the matrix) plus fixed seconds for runtime code
/// generation. Values are calibrated against paper Table V; the fixed JIT
/// cost is scaled by the same 1/16 factor as the matrices and caches.
struct CostModelParams {
  /// SpMV iterations per timed trial ("We run 64 SpMV iterations to get
  /// valid timing measurements", paper §IV-D).
  int timing_iters = 64;
  /// Fixed runtime code-generation (JIT) cost per distinct kernel, seconds.
  double jit_fixed_seconds = 300e-6;
  /// Feature extraction cost, multiples of t_csr: O(N) subset / O(NNZ) subset.
  double feat_extract_linear_spmv = 1.0;
  double feat_extract_full_spmv = 5.0;
  /// Format-conversion setup costs, multiples of t_csr.
  double delta_setup_spmv = 3.0;
  double decompose_setup_spmv = 2.0;
  double autosched_setup_spmv = 0.1;
  /// Symmetric (lower-triangle+diagonal) storage build: count/scan/fill over
  /// the nonzeros plus the mirror-verification pass, comparable to the
  /// decomposition rewrite.
  double sym_setup_spmv = 2.0;
  /// Extra setup for codegen-only variants (prefetch/unroll/vector).
  double codegen_setup_spmv = 0.5;
  /// Vendor inspector-executor inspection cost, multiples of t_csr.
  double ie_inspection_spmv = 40.0;
  /// Parallel inspector pipeline (DESIGN.md §13): threads available to the
  /// optimizer's own preprocessing (format conversion, feature extraction)
  /// and the parallel efficiency of the two-pass builders. The modeled
  /// speedup 1 + (threads - 1) * efficiency divides every conversion and
  /// extraction cost. The vendor inspection (ie_inspection_spmv) is opaque
  /// third-party code and stays serial in the model.
  int inspector_threads = 1;
  double inspector_parallel_efficiency = 0.6;

  /// Conversion/extraction speedup implied by the inspector fields.
  [[nodiscard]] double inspector_speedup() const {
    return inspector_threads > 1
               ? 1.0 + (inspector_threads - 1) * inspector_parallel_efficiency
               : 1.0;
  }

  /// Multi-vector (SpMM) traffic model (DESIGN.md §14): a k-wide SpMM
  /// streams the matrix arrays once plus k dense-operand footprints, where
  /// k sequential SpMVs stream both k times. Bandwidth-bound time is
  /// traffic-proportional, so with f = the matrix fraction of one SpMV's
  /// stream, t_spmm(k) / t_spmv = f + k (1 - f), plus a small per-extra-
  /// column compute charge — the register-blocked FMA columns are cheap but
  /// not free (register pressure, wider stores).
  double spmm_column_overhead = 0.02;

  /// Modeled time of one k-wide SpMM in units of one SpMV of the same
  /// matrix. `matrix_traffic_fraction` is f above (sim::matrix_traffic_
  /// fraction computes it from the CSR stream).
  [[nodiscard]] double spmm_time_spmv(int k, double matrix_traffic_fraction) const {
    const auto dk = static_cast<double>(k);
    return matrix_traffic_fraction + dk * (1.0 - matrix_traffic_fraction) +
           (dk - 1.0) * spmm_column_overhead;
  }

  /// Modeled speedup of one k-wide SpMM over k sequential SpMVs — the
  /// break-even ratio bench/table5_amortization reports. > 1 whenever the
  /// matrix stream dominates enough to amortize.
  [[nodiscard]] double spmm_speedup(int k, double matrix_traffic_fraction) const {
    return static_cast<double>(k) / spmm_time_spmv(k, matrix_traffic_fraction);
  }
};

/// Outcome of one optimizer invocation for one matrix.
struct OptimizationPlan {
  std::string strategy;                     // "profile", "feature", "oracle", ...
  BottleneckSet classes;                    // detected bottlenecks (empty for sweeps)
  std::vector<Optimization> optimizations;  // jointly applied set
  sim::KernelConfig config;                 // composed kernel variant
  double gflops = 0.0;                      // optimized SpMV rate
  double t_spmv_seconds = 0.0;              // optimized per-iteration time
  double t_pre_seconds = 0.0;               // optimizer overhead (selection+setup)
  /// Full decision record; null unless trace collection was requested.
  std::shared_ptr<const obs::TuneTrace> trace;
};

/// Strategy selector for Autotuner::tune / Autotuner::plan.
enum class TunePolicy {
  kProfile,          // bound micro-benchmarks + rule classifier (Fig. 4)
  kFeature,          // structural features + pre-trained tree (needs classifier)
  kOracle,           // best of the 15 candidate sets, zero charged overhead
  kTrivialSingle,    // sweep the 5 single-optimization sets, pay every trial
  kTrivialCombined,  // sweep all 15 candidate sets, pay every trial
};

/// The strategy string a policy produces ("profile", "feature", ...).
std::string to_string(TunePolicy policy);

// Trace payload helpers (shared by the modeled and host tuning paths).
std::vector<obs::NamedValue> named_features(const FeatureVector& fv);
std::vector<obs::NamedValue> named_bounds(const PerfBounds& b);
std::vector<std::string> named_classes(BottleneckSet s);

/// Everything that parameterizes one tune()/plan() call.
struct TuneOptions {
  TunePolicy policy = TunePolicy::kProfile;
  /// Required for kFeature; ignored otherwise. Not owned.
  const FeatureClassifier* classifier = nullptr;
  /// Matrix label recorded in the trace.
  std::string name{};
  /// Attach an obs::TuneTrace to the returned plan. Defaults to the
  /// runtime telemetry toggle; can be forced on even when telemetry is
  /// disabled (trace building is cold-path and always compiled in).
  bool collect_trace = obs::enabled();
};

class Autotuner {
 public:
  explicit Autotuner(MachineSpec machine, ProfileThresholds thresholds = {},
                     CostModelParams cost = {}, ImbPolicy imb = {});

  /// Everything the benches need for one matrix, computed once: bounds,
  /// features, and the simulated performance of every candidate kernel
  /// configuration (the 15 sweep sets plus every class-mask selection).
  struct Evaluation {
    std::string name;
    index_t nrows = 0;
    offset_t nnz = 0;
    /// Exact structural + numerical symmetry (is_symmetric,
    /// sparse/properties.hpp) — gates the symmetric-storage rider on every
    /// derived plan.
    bool symmetric = false;
    PerfBounds bounds;
    FeatureVector features;
    /// Simulated GFLOP/s per kernel configuration (a small config->rate map).
    std::vector<std::pair<sim::KernelConfig, double>> perf;
    /// GFLOP/s of the joint selection for every class bitmask 0..15
    /// (mask 0 = baseline).
    std::array<double, 16> class_mask_gflops{};
    /// GFLOP/s of each combined_optimization_sets() entry, in order.
    std::vector<double> combo_gflops;
    /// Wall-clock cost of the evaluation phases (bounds/features/simulate),
    /// carried into the trace of any plan derived from this evaluation.
    std::vector<obs::PhaseCost> phases;

    /// Rate for a config simulated during evaluate(); throws if absent.
    [[nodiscard]] double gflops_for(const sim::KernelConfig& cfg) const;
    /// Optimized SpMV seconds from a rate.
    [[nodiscard]] double seconds_at(double gflops) const;
  };

  [[nodiscard]] Evaluation evaluate(const std::string& name, const CsrMatrix& m) const;

  // --- The unified entry points -------------------------------------------
  /// Evaluate + plan in one call.
  [[nodiscard]] OptimizationPlan tune(const CsrMatrix& m, const TuneOptions& opts = {}) const;
  /// Plan from a precomputed evaluation (pure lookups).
  [[nodiscard]] OptimizationPlan plan(const Evaluation& e, const TuneOptions& opts = {}) const;

  /// Simulate one configuration directly.
  [[nodiscard]] double simulate_gflops(const CsrMatrix& m, const sim::KernelConfig& cfg) const;

  /// Build a labeled training sample (features + profile-guided labels).
  [[nodiscard]] TrainingSample label(const CsrMatrix& m) const;
  [[nodiscard]] TrainingSample label(const Evaluation& e) const;

  [[nodiscard]] const MachineSpec& machine() const { return machine_; }
  [[nodiscard]] const ProfileThresholds& thresholds() const { return thresholds_; }
  void set_thresholds(const ProfileThresholds& t) { thresholds_ = t; }
  [[nodiscard]] const CostModelParams& cost_model() const { return cost_; }
  [[nodiscard]] const ImbPolicy& imb_policy() const { return imb_; }
  [[nodiscard]] FeatureExtractionConfig extraction_config() const;

 private:
  [[nodiscard]] double setup_seconds(const std::vector<Optimization>& ops,
                                     double t_csr) const;
  [[nodiscard]] OptimizationPlan plan_from_classes(const Evaluation& e, BottleneckSet classes,
                                                   std::string strategy,
                                                   double selection_seconds) const;
  [[nodiscard]] OptimizationPlan plan_profile_impl(const Evaluation& e) const;
  [[nodiscard]] OptimizationPlan plan_feature_impl(const Evaluation& e,
                                                   const FeatureClassifier& fc) const;
  [[nodiscard]] OptimizationPlan plan_oracle_impl(const Evaluation& e) const;
  [[nodiscard]] OptimizationPlan plan_trivial_impl(const Evaluation& e, bool combined) const;

  MachineSpec machine_;
  ProfileThresholds thresholds_;
  CostModelParams cost_;
  ImbPolicy imb_;
};

}  // namespace sparta
