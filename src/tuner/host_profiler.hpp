// Host profiling path: the paper's methodology executed with *real* kernels
// and wall-clock timers on the machine this binary runs on — the deployment
// mode a downstream user of the library cares about. The modeled platforms
// (sim/) reproduce the paper's testbeds; this module applies the identical
// bound-and-bottleneck pipeline to live hardware:
//   P_CSR / P_IMB — timed baseline run with per-thread durations
//   P_ML          — timed run of the regularized-colind kernel
//   P_CMP         — timed run of the unit-stride kernel
//   P_MB / P_peak — analytic, anchored on the measured STREAM bandwidth
// classify_profile() then consumes the measured bounds unchanged.
#pragma once

#include "machine/stream_probe.hpp"
#include "tuner/optimizer.hpp"

namespace sparta {

struct HostProfileOptions {
  /// Threads for the measurement kernels (0 = all available).
  int threads = 0;
  /// SpMV iterations per timed benchmark (paper uses 64).
  int iterations = 16;
  /// Reuse a previous STREAM probe instead of re-measuring (probe costs
  /// tens of ms; pass the result when profiling many matrices).
  const StreamResult* stream = nullptr;
  /// Matrix label recorded in the trace.
  std::string name{};
  /// Attach an obs::TuneTrace (measured bounds, classes, per-phase wall
  /// microseconds) to the returned plan.
  bool collect_trace = obs::enabled();
};

/// Measure all per-class bounds on the host.
PerfBounds measure_bounds_host(const CsrMatrix& m, const HostProfileOptions& options = {});

/// Full profile-guided tuning on the host: measure bounds, classify, select
/// and *prepare* the optimized kernel, then time it. The returned plan's
/// gflops/t_spmv are real measurements and t_pre is the real wall-clock
/// preprocessing cost (profiling + conversion), so the amortization formula
/// can be applied to live data.
OptimizationPlan tune_host(const CsrMatrix& m, const HostProfileOptions& options = {},
                           const ProfileThresholds& thresholds = {},
                           const ImbPolicy& imb = {});

}  // namespace sparta
