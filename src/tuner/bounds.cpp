#include "tuner/bounds.hpp"

#include "common/statistics.hpp"
#include "tuner/bottleneck.hpp"

namespace sparta {

std::string to_string(Bottleneck b) {
  switch (b) {
    case Bottleneck::kMB: return "MB";
    case Bottleneck::kML: return "ML";
    case Bottleneck::kIMB: return "IMB";
    case Bottleneck::kCMP: return "CMP";
  }
  return "?";
}

std::string to_string(BottleneckSet s) {
  std::string out = "{";
  bool first = true;
  for (int i = 0; i < kNumBottlenecks; ++i) {
    const auto b = static_cast<Bottleneck>(i);
    if (s.contains(b)) {
      if (!first) out += ',';
      out += to_string(b);
      first = false;
    }
  }
  out += '}';
  return out;
}

double effective_bandwidth_gbs(const CsrMatrix& m, const MachineSpec& machine) {
  return m.spmv_working_set_bytes() <= machine.llc_bytes ? machine.stream_llc_gbs
                                                         : machine.stream_main_gbs;
}

double p_mb_bound(const CsrMatrix& m, const MachineSpec& machine) {
  const double xy_bytes =
      static_cast<double>(m.ncols() + m.nrows()) * sizeof(value_t);
  const double bytes = static_cast<double>(m.bytes()) + xy_bytes;
  const double bw = effective_bandwidth_gbs(m, machine) * 1e9;
  return 2.0 * static_cast<double>(m.nnz()) / (bytes / bw) * 1e-9;
}

double p_peak_bound(const CsrMatrix& m, const MachineSpec& machine) {
  const double xy_bytes =
      static_cast<double>(m.ncols() + m.nrows()) * sizeof(value_t);
  const double bytes = static_cast<double>(m.value_bytes()) + xy_bytes;
  const double bw = effective_bandwidth_gbs(m, machine) * 1e9;
  return 2.0 * static_cast<double>(m.nnz()) / (bytes / bw) * 1e-9;
}

PerfBounds measure_bounds(const CsrMatrix& m, const MachineSpec& machine) {
  PerfBounds b;

  // Baseline CSR run.
  const auto base = sim::simulate_spmv(m, machine, sim::baseline_config());
  b.p_csr = base.run.gflops;
  b.t_csr_seconds = base.run.seconds;
  b.thread_seconds = base.run.thread_seconds;

  // P_IMB from the baseline's per-thread times (median attaches reduced
  // importance to outliers, paper §III-B). Threads that received no work —
  // partition boundaries collapse around ultra-dense rows — are excluded,
  // otherwise the median degenerates to an idle thread's ~0 time.
  std::vector<double> busy;
  busy.reserve(base.run.thread_seconds.size());
  for (std::size_t t = 0; t < base.run.thread_seconds.size(); ++t) {
    if (base.run.thread_seconds[t] > 1e-3 * base.run.seconds) {
      busy.push_back(base.run.thread_seconds[t]);
    }
  }
  const double t_median = stats::median(busy.empty() ? base.run.thread_seconds : busy);
  b.p_imb = t_median > 0.0
                ? 2.0 * static_cast<double>(m.nnz()) / t_median * 1e-9
                : b.p_csr;

  // P_ML micro-benchmark: regularized x accesses.
  sim::KernelConfig ml_cfg = sim::baseline_config();
  ml_cfg.x_access = sim::XAccess::kRegularized;
  b.p_ml = sim::simulate_spmv(m, machine, ml_cfg).run.gflops;

  // P_CMP micro-benchmark: unit-stride accesses, no indirect references.
  sim::KernelConfig cmp_cfg = sim::baseline_config();
  cmp_cfg.x_access = sim::XAccess::kUnitStride;
  b.p_cmp = sim::simulate_spmv(m, machine, cmp_cfg).run.gflops;

  b.p_mb = p_mb_bound(m, machine);
  b.p_peak = p_peak_bound(m, machine);
  return b;
}

}  // namespace sparta
