#include "tuner/grid_search.hpp"

namespace sparta {

double average_gain(std::span<const Autotuner::Evaluation> evals, const Autotuner& tuner,
                    const ProfileThresholds& t) {
  if (evals.empty()) return 0.0;
  double total = 0.0;
  for (const auto& e : evals) {
    const auto classes = classify_profile(e.bounds, t);
    // The IMB sub-selection is feature-driven and already folded into
    // class_mask_gflops during evaluation.
    const double optimized = e.class_mask_gflops[classes.mask()];
    total += e.bounds.p_csr > 0.0 ? optimized / e.bounds.p_csr : 1.0;
  }
  (void)tuner;
  return total / static_cast<double>(evals.size());
}

GridSearchResult tune_thresholds(std::span<const Autotuner::Evaluation> evals,
                                 const Autotuner& tuner, std::span<const double> t_ml_values,
                                 std::span<const double> t_imb_values) {
  GridSearchResult result;
  result.cells.reserve(t_ml_values.size() * t_imb_values.size());
  for (double t_ml : t_ml_values) {
    for (double t_imb : t_imb_values) {
      ProfileThresholds t;
      t.t_ml = t_ml;
      t.t_imb = t_imb;
      const double gain = average_gain(evals, tuner, t);
      result.cells.push_back({t_ml, t_imb, gain});
      if (gain > result.best_gain) {
        result.best_gain = gain;
        result.best = t;
      }
    }
  }
  return result;
}

std::vector<double> default_threshold_grid() {
  std::vector<double> grid;
  for (double v = 1.05; v <= 2.001; v += 0.05) grid.push_back(v);
  return grid;
}

}  // namespace sparta
