#include "tuner/optimizations.hpp"

#include <algorithm>

namespace sparta {

std::string to_string(Optimization o) {
  switch (o) {
    case Optimization::kDeltaVec: return "delta+vec";
    case Optimization::kPrefetch: return "prefetch";
    case Optimization::kDecompose: return "decompose";
    case Optimization::kAutoSched: return "auto-sched";
    case Optimization::kUnrollVec: return "unroll+vec";
  }
  return "?";
}

std::string to_string(const std::vector<Optimization>& os) {
  if (os.empty()) return "(none)";
  std::string s;
  for (std::size_t i = 0; i < os.size(); ++i) {
    if (i > 0) s += '+';
    s += to_string(os[i]);
  }
  return s;
}

Bottleneck target_class(Optimization o) {
  switch (o) {
    case Optimization::kDeltaVec: return Bottleneck::kMB;
    case Optimization::kPrefetch: return Bottleneck::kML;
    case Optimization::kDecompose:
    case Optimization::kAutoSched: return Bottleneck::kIMB;
    case Optimization::kUnrollVec: return Bottleneck::kCMP;
  }
  return Bottleneck::kMB;
}

std::vector<Optimization> select_optimizations(BottleneckSet classes, const FeatureVector& fv,
                                               const ImbPolicy& policy) {
  std::vector<Optimization> out;
  if (classes.contains(Bottleneck::kMB)) out.push_back(Optimization::kDeltaVec);
  if (classes.contains(Bottleneck::kML)) out.push_back(Optimization::kPrefetch);
  if (classes.contains(Bottleneck::kIMB)) {
    const double avg = std::max(fv[Feature::kNnzAvg], 1.0);
    const bool uneven_rows = fv[Feature::kNnzMax] / avg > policy.uneven_row_ratio;
    out.push_back(uneven_rows ? Optimization::kDecompose : Optimization::kAutoSched);
  }
  if (classes.contains(Bottleneck::kCMP)) out.push_back(Optimization::kUnrollVec);
  return out;
}

sim::KernelConfig config_for(const std::vector<Optimization>& os) {
  sim::KernelConfig cfg;
  for (Optimization o : os) {
    switch (o) {
      case Optimization::kDeltaVec:
        cfg.delta = true;
        cfg.vectorized = true;
        break;
      case Optimization::kPrefetch:
        cfg.prefetch = true;
        break;
      case Optimization::kDecompose:
        cfg.decomposed = true;
        break;
      case Optimization::kAutoSched:
        cfg.schedule = sim::Schedule::kDynamicChunks;
        break;
      case Optimization::kUnrollVec:
        cfg.unrolled = true;
        cfg.vectorized = true;
        break;
    }
  }
  return cfg;
}

const std::vector<std::vector<Optimization>>& single_optimization_sets() {
  static const std::vector<std::vector<Optimization>> kSingles = [] {
    std::vector<std::vector<Optimization>> v;
    for (int i = 0; i < kNumOptimizations; ++i) {
      v.push_back({static_cast<Optimization>(i)});
    }
    return v;
  }();
  return kSingles;
}

const std::vector<std::vector<Optimization>>& combined_optimization_sets() {
  static const std::vector<std::vector<Optimization>> kAll = [] {
    auto v = single_optimization_sets();
    for (int i = 0; i < kNumOptimizations; ++i) {
      for (int j = i + 1; j < kNumOptimizations; ++j) {
        // All C(5,2)=10 pairs are swept, matching the paper's count of 15
        // trivial-combined candidates (decompose+auto applies dynamic
        // scheduling to the short-row part of the decomposition).
        v.push_back({static_cast<Optimization>(i), static_cast<Optimization>(j)});
      }
    }
    return v;
  }();
  return kAll;
}

}  // namespace sparta
