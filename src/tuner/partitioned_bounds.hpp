// Partitioned bound analysis — the paper's future-work extension (§IV-C):
//
//   "we discovered that the benchmark that exposes irregularity for the
//    profile-guided classifier can actually detect the irregularity in this
//    matrix by looking at it in partitions, instead of looking at it as a
//    whole. We intend to extend our classification approach to incorporate
//    this idea in future work."
//
// A matrix whose irregularity is confined to one region (e.g. rajat30's
// dense rows, or the scattered half of a regionally hybrid matrix) can pass
// the global P_ML test: the regularization gain of the irregular region is
// diluted by the regular remainder. Here the P_ML micro-benchmark runs per
// row partition and the *maximum* per-partition gain is reported; the
// extended classifier adds the ML class when any region clears the T_ML
// threshold.
#pragma once

#include <vector>

#include "machine/machine_spec.hpp"
#include "tuner/profile_classifier.hpp"

namespace sparta {

/// Per-partition regularization gains.
struct PartitionedMlResult {
  /// Whole-matrix gain P_ML / P_CSR (the standard Fig. 4 signal).
  double global_gain = 0.0;
  /// Gain of each row partition: P_ML(part) / P_CSR(part).
  std::vector<double> partition_gains;
  /// Max over partitions — the extension's detection signal.
  double max_partition_gain = 0.0;
  /// Index of the most latency-bound partition.
  int worst_partition = -1;
};

/// Run the P_ML micro-benchmark per nnz-balanced row partition.
/// `partitions` controls granularity (paper leaves it open; 16 keeps the
/// added profiling cost at a small multiple of the standard benchmark).
PartitionedMlResult measure_partitioned_ml(const CsrMatrix& m, const MachineSpec& machine,
                                           int partitions = 16);

/// The Fig. 4 classifier extended with the partitioned ML signal: same
/// rules, plus ML when max_partition_gain > T_ML.
BottleneckSet classify_profile_partitioned(const PerfBounds& bounds,
                                           const PartitionedMlResult& ml,
                                           const ProfileThresholds& t = {});

}  // namespace sparta
