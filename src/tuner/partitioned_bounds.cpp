#include "tuner/partitioned_bounds.hpp"

#include <stdexcept>

#include "sim/simulator.hpp"
#include "sparse/partition.hpp"

namespace sparta {

PartitionedMlResult measure_partitioned_ml(const CsrMatrix& m, const MachineSpec& machine,
                                           int partitions) {
  if (partitions <= 0) throw std::invalid_argument{"partitioned_ml: partitions <= 0"};
  PartitionedMlResult result;

  sim::KernelConfig reg = sim::baseline_config();
  reg.x_access = sim::XAccess::kRegularized;

  const double global_base = sim::simulate_spmv(m, machine, sim::baseline_config()).run.gflops;
  const double global_reg = sim::simulate_spmv(m, machine, reg).run.gflops;
  result.global_gain = global_base > 0.0 ? global_reg / global_base : 0.0;

  const auto parts = partition_balanced_nnz(m, partitions);
  result.partition_gains.reserve(parts.size());
  for (std::size_t p = 0; p < parts.size(); ++p) {
    const auto& r = parts[p];
    if (r.size() == 0) {
      result.partition_gains.push_back(1.0);
      continue;
    }
    const CsrMatrix slice = m.slice_rows(r.begin, r.end);
    if (slice.nnz() == 0) {
      result.partition_gains.push_back(1.0);
      continue;
    }
    const double base = sim::simulate_spmv(slice, machine, sim::baseline_config()).run.gflops;
    const double regular = sim::simulate_spmv(slice, machine, reg).run.gflops;
    const double gain = base > 0.0 ? regular / base : 1.0;
    result.partition_gains.push_back(gain);
    if (gain > result.max_partition_gain) {
      result.max_partition_gain = gain;
      result.worst_partition = static_cast<int>(p);
    }
  }
  return result;
}

BottleneckSet classify_profile_partitioned(const PerfBounds& bounds,
                                           const PartitionedMlResult& ml,
                                           const ProfileThresholds& t) {
  BottleneckSet cls = classify_profile(bounds, t);
  if (ml.max_partition_gain > t.t_ml) cls.insert(Bottleneck::kML);
  return cls;
}

}  // namespace sparta
