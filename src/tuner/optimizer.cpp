#include "tuner/optimizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/contract.hpp"
#include "check/validate_tuner.hpp"
#include "sparse/properties.hpp"

namespace sparta {

std::vector<obs::NamedValue> named_features(const FeatureVector& fv) {
  std::vector<obs::NamedValue> out;
  out.reserve(kNumFeatures);
  for (int i = 0; i < kNumFeatures; ++i) {
    const auto f = static_cast<Feature>(i);
    out.emplace_back(std::string{feature_name(f)}, fv[f]);
  }
  return out;
}

std::vector<obs::NamedValue> named_bounds(const PerfBounds& b) {
  std::vector<obs::NamedValue> out{
      {"P_CSR", b.p_csr},   {"P_MB", b.p_mb},     {"P_ML", b.p_ml},
      {"P_IMB", b.p_imb},   {"P_CMP", b.p_cmp},   {"P_peak", b.p_peak},
      {"t_csr_seconds", b.t_csr_seconds},
  };
  if (b.p_csr > 0.0) {
    // The ratios the Fig. 4 rules actually compare against the thresholds.
    out.emplace_back("P_MB/P_CSR", b.p_mb / b.p_csr);
    out.emplace_back("P_ML/P_CSR", b.p_ml / b.p_csr);
    out.emplace_back("P_IMB/P_CSR", b.p_imb / b.p_csr);
    out.emplace_back("P_CMP/P_CSR", b.p_cmp / b.p_csr);
  }
  return out;
}

std::vector<std::string> named_classes(BottleneckSet s) {
  std::vector<std::string> out;
  for (int i = 0; i < kNumBottlenecks; ++i) {
    const auto b = static_cast<Bottleneck>(i);
    if (s.contains(b)) out.push_back(to_string(b));
  }
  return out;
}

std::string to_string(TunePolicy policy) {
  switch (policy) {
    case TunePolicy::kProfile:
      return "profile";
    case TunePolicy::kFeature:
      return "feature";
    case TunePolicy::kOracle:
      return "oracle";
    case TunePolicy::kTrivialSingle:
      return "trivial-single";
    case TunePolicy::kTrivialCombined:
      return "trivial-combined";
  }
  return "?";
}

Autotuner::Autotuner(MachineSpec machine, ProfileThresholds thresholds, CostModelParams cost,
                     ImbPolicy imb)
    : machine_(std::move(machine)), thresholds_(thresholds), cost_(cost), imb_(imb) {}

FeatureExtractionConfig Autotuner::extraction_config() const {
  return {machine_.llc_bytes, machine_.values_per_line()};
}

double Autotuner::Evaluation::gflops_for(const sim::KernelConfig& cfg) const {
  for (const auto& [c, g] : perf) {
    if (c == cfg) return g;
  }
  throw std::out_of_range{"Evaluation: config '" + cfg.describe() + "' was not simulated"};
}

double Autotuner::Evaluation::seconds_at(double gflops) const {
  return gflops > 0.0 ? 2.0 * static_cast<double>(nnz) / gflops * 1e-9 : 0.0;
}

double Autotuner::simulate_gflops(const CsrMatrix& m, const sim::KernelConfig& cfg) const {
  return sim::simulate_spmv(m, machine_, cfg).run.gflops;
}

Autotuner::Evaluation Autotuner::evaluate(const std::string& name, const CsrMatrix& m) const {
  Evaluation e;
  e.name = name;
  e.nrows = m.nrows();
  e.nnz = m.nnz();
  e.symmetric = m.nrows() == m.ncols() && is_symmetric(m);
  {
    const obs::ScopedPhase phase{e.phases, "bounds"};
    e.bounds = measure_bounds(m, machine_);
  }
  {
    const obs::ScopedPhase phase{e.phases, "features"};
    e.features = extract_features(m, extraction_config());
  }
  {
    const obs::ScopedPhase phase{e.phases, "simulate"};

    auto rate_of = [&](const sim::KernelConfig& cfg) {
      for (const auto& [c, g] : e.perf) {
        if (c == cfg) return g;
      }
      const double g = simulate_gflops(m, cfg);
      e.perf.emplace_back(cfg, g);
      return g;
    };

    // Baseline is part of the cache too (mask 0 / empty sweep entry).
    rate_of(sim::baseline_config());

    // All 15 sweep candidates.
    const auto& combos = combined_optimization_sets();
    e.combo_gflops.reserve(combos.size());
    for (const auto& combo : combos) {
      e.combo_gflops.push_back(rate_of(config_for(combo)));
    }

    // Every class-mask selection the classifiers could emit.
    for (std::uint32_t mask = 0; mask < 16; ++mask) {
      const auto classes = BottleneckSet::from_mask(mask);
      const auto ops = select_optimizations(classes, e.features, imb_);
      e.class_mask_gflops[mask] = rate_of(config_for(ops));
    }
  }
  auto& reg = obs::Registry::global();
  reg.counter("tuner.evaluate.calls").add();
  double total_micros = 0.0;
  for (const auto& p : e.phases) total_micros += p.micros;
  reg.histogram("tuner.evaluate.micros").record(total_micros);
  return e;
}

double Autotuner::setup_seconds(const std::vector<Optimization>& ops, double t_csr) const {
  // Conversion work runs through the parallel inspector pipeline and is
  // divided by its modeled speedup; the fixed JIT cost is serial codegen.
  double conversion = 0.0;
  bool codegen = false;
  for (Optimization o : ops) {
    switch (o) {
      case Optimization::kDeltaVec:
        conversion += cost_.delta_setup_spmv * t_csr;
        codegen = true;
        break;
      case Optimization::kPrefetch:
        codegen = true;
        break;
      case Optimization::kDecompose:
        conversion += cost_.decompose_setup_spmv * t_csr;
        break;
      case Optimization::kAutoSched:
        conversion += cost_.autosched_setup_spmv * t_csr;
        break;
      case Optimization::kUnrollVec:
        codegen = true;
        break;
    }
  }
  if (codegen) conversion += cost_.codegen_setup_spmv * t_csr;
  double sec = conversion / cost_.inspector_speedup();
  if (codegen) sec += cost_.jit_fixed_seconds;
  return sec;
}

OptimizationPlan Autotuner::plan_from_classes(const Evaluation& e, BottleneckSet classes,
                                              std::string strategy,
                                              double selection_seconds) const {
  OptimizationPlan plan;
  plan.strategy = std::move(strategy);
  plan.classes = classes;
  plan.optimizations = select_optimizations(classes, e.features, imb_);
  plan.config = config_for(plan.optimizations);
  plan.gflops = e.class_mask_gflops[classes.mask()];
  plan.t_spmv_seconds = e.seconds_at(plan.gflops);
  plan.t_pre_seconds = selection_seconds + setup_seconds(plan.optimizations, e.bounds.t_csr_seconds);
  return plan;
}

OptimizationPlan Autotuner::plan_profile_impl(const Evaluation& e) const {
  const auto classes = classify_profile(e.bounds, thresholds_);
  // Selection cost: the profiling phase times the baseline and the two
  // micro-benchmarks, timing_iters runs each (P_MB/P_peak are analytic and
  // P_IMB falls out of the baseline run — paper §III-B).
  const double t_ml_bench = e.seconds_at(e.bounds.p_ml);
  const double t_cmp_bench = e.seconds_at(e.bounds.p_cmp);
  const double selection =
      cost_.timing_iters * (e.bounds.t_csr_seconds + t_ml_bench + t_cmp_bench);
  return plan_from_classes(e, classes, "profile", selection);
}

OptimizationPlan Autotuner::plan_feature_impl(const Evaluation& e,
                                              const FeatureClassifier& fc) const {
  const auto classes = fc.classify(e.features);
  // Selection cost: feature extraction (tree query is O(log n), negligible).
  const bool needs_nnz_pass =
      std::any_of(fc.config().subset.begin(), fc.config().subset.end(), [](Feature f) {
        return f == Feature::kClusteringAvg || f == Feature::kMissesAvg;
      });
  const double selection = (needs_nnz_pass ? cost_.feat_extract_full_spmv
                                           : cost_.feat_extract_linear_spmv) *
                           e.bounds.t_csr_seconds / cost_.inspector_speedup();
  return plan_from_classes(e, classes, "feature", selection);
}

OptimizationPlan Autotuner::plan_oracle_impl(const Evaluation& e) const {
  OptimizationPlan plan;
  plan.strategy = "oracle";
  plan.gflops = e.bounds.p_csr;
  plan.config = sim::baseline_config();
  const auto& combos = combined_optimization_sets();
  for (std::size_t i = 0; i < combos.size(); ++i) {
    if (e.combo_gflops[i] > plan.gflops) {
      plan.gflops = e.combo_gflops[i];
      plan.optimizations = combos[i];
      plan.config = config_for(combos[i]);
    }
  }
  plan.t_spmv_seconds = e.seconds_at(plan.gflops);
  plan.t_pre_seconds = 0.0;  // the oracle is a hypothetical upper bound
  return plan;
}

OptimizationPlan Autotuner::plan_trivial_impl(const Evaluation& e, bool combined) const {
  OptimizationPlan plan;
  plan.strategy = combined ? "trivial-combined" : "trivial-single";
  plan.gflops = e.bounds.p_csr;
  plan.config = sim::baseline_config();
  const auto& combos = combined_optimization_sets();
  const std::size_t limit = combined ? combos.size() : single_optimization_sets().size();
  double sweep_seconds = 0.0;
  for (std::size_t i = 0; i < limit; ++i) {
    // Pay for this trial: setup + timed runs of the candidate.
    sweep_seconds += setup_seconds(combos[i], e.bounds.t_csr_seconds) +
                     cost_.timing_iters * e.seconds_at(e.combo_gflops[i]);
    if (e.combo_gflops[i] > plan.gflops) {
      plan.gflops = e.combo_gflops[i];
      plan.optimizations = combos[i];
      plan.config = config_for(combos[i]);
    }
  }
  plan.t_spmv_seconds = e.seconds_at(plan.gflops);
  plan.t_pre_seconds = sweep_seconds;
  return plan;
}

OptimizationPlan Autotuner::plan(const Evaluation& e, const TuneOptions& opts) const {
  std::vector<obs::PhaseCost> plan_phases;
  OptimizationPlan p;
  {
    const obs::ScopedPhase phase{plan_phases, "plan"};
    switch (opts.policy) {
      case TunePolicy::kProfile:
        p = plan_profile_impl(e);
        break;
      case TunePolicy::kFeature:
        if (opts.classifier == nullptr) {
          throw std::invalid_argument{
              "Autotuner::plan: TunePolicy::kFeature requires TuneOptions::classifier"};
        }
        p = plan_feature_impl(e, *opts.classifier);
        break;
      case TunePolicy::kOracle:
        p = plan_oracle_impl(e);
        break;
      case TunePolicy::kTrivialSingle:
        p = plan_trivial_impl(e, /*combined=*/false);
        break;
      case TunePolicy::kTrivialCombined:
        p = plan_trivial_impl(e, /*combined=*/true);
        break;
    }
    // Symmetric-storage rider: an exactly symmetric matrix runs its plan on
    // lower-triangle+diagonal storage whenever the selected config is
    // compatible (never next to the rewrites it is exclusive with, and the
    // scatter/reduce windows need a static schedule). The reported rate is
    // left at the simulated general-kernel value — conservative, since the
    // halved matrix stream only helps — but the storage build is charged to
    // t_pre like any other conversion (the oracle stays a zero-overhead
    // hypothetical).
    if (e.symmetric && !p.config.delta && !p.config.decomposed &&
        p.config.schedule != sim::Schedule::kDynamicChunks) {
      p.config.symmetric = true;
      if (p.strategy != "oracle") {
        p.t_pre_seconds +=
            cost_.sym_setup_spmv * e.bounds.t_csr_seconds / cost_.inspector_speedup();
      }
    }
  }
  auto& reg = obs::Registry::global();
  reg.counter("tuner.plan.calls").add();
  reg.counter("tuner.plan." + p.strategy).add();
  if (opts.collect_trace) {
    auto t = std::make_shared<obs::TuneTrace>();
    t->matrix = opts.name.empty() ? e.name : opts.name;
    t->strategy = p.strategy;
    t->nrows = e.nrows;
    t->nnz = e.nnz;
    t->features = named_features(e.features);
    t->bounds = named_bounds(e.bounds);
    t->classes = named_classes(p.classes);
    t->class_mask = p.classes.mask();
    t->optimizations.reserve(p.optimizations.size());
    for (Optimization o : p.optimizations) t->optimizations.push_back(to_string(o));
    t->config = p.config.describe();
    t->gflops = p.gflops;
    t->t_spmv_seconds = p.t_spmv_seconds;
    t->t_pre_seconds = p.t_pre_seconds;
    t->phases = e.phases;
    t->phases.insert(t->phases.end(), plan_phases.begin(), plan_phases.end());
    p.trace = std::move(t);
  }
  // Decision-consistency contract: the composed config must match the
  // optimization list, and the timing-model outputs must be sane.
  SPARTA_CHECK_STRUCTURE(p);
  return p;
}

OptimizationPlan Autotuner::tune(const CsrMatrix& m, const TuneOptions& opts) const {
  return plan(evaluate(opts.name, m), opts);
}

TrainingSample Autotuner::label(const Evaluation& e) const {
  return {e.features, classify_profile(e.bounds, thresholds_)};
}

TrainingSample Autotuner::label(const CsrMatrix& m) const {
  TrainingSample s;
  s.features = extract_features(m, extraction_config());
  s.labels = classify_profile(measure_bounds(m, machine_), thresholds_);
  return s;
}

}  // namespace sparta
