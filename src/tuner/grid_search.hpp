// Hyperparameter grid search for the profile-guided classifier (paper
// §III-C): exhaustively sweep (T_ML, T_IMB) and keep the combination that
// maximizes the average performance gain of the selected optimizations over
// a training corpus.
#pragma once

#include <span>
#include <vector>

#include "tuner/optimizer.hpp"

namespace sparta {

struct GridSearchCell {
  double t_ml = 0.0;
  double t_imb = 0.0;
  /// Mean over the corpus of (selected-optimization GFLOP/s) / (baseline).
  double avg_gain = 0.0;
};

struct GridSearchResult {
  ProfileThresholds best;
  double best_gain = 0.0;
  std::vector<GridSearchCell> cells;  // full surface, row-major (t_ml outer)
};

/// Average gain of given thresholds over precomputed evaluations.
double average_gain(std::span<const Autotuner::Evaluation> evals, const Autotuner& tuner,
                    const ProfileThresholds& t);

/// Exhaustive sweep over the cross product of the candidate values.
GridSearchResult tune_thresholds(std::span<const Autotuner::Evaluation> evals,
                                 const Autotuner& tuner, std::span<const double> t_ml_values,
                                 std::span<const double> t_imb_values);

/// The default grid used by the benches: 1.05..2.0 in steps of ~0.05.
std::vector<double> default_threshold_grid();

}  // namespace sparta
