#include "tuner/plan_cache.hpp"

#include <algorithm>
#include <span>
#include <vector>

#include "sparse/build.hpp"

namespace sparta::tuner {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

template <class T>
std::uint64_t hash_chunk(std::span<const T> s, int nchunks, int c, std::uint64_t h) {
  const auto b = build::chunk_begin(s.size(), nchunks, c);
  const auto e = build::chunk_begin(s.size(), nchunks, c + 1);
  return fnv1a(s.data() + b, (e - b) * sizeof(T), h);
}

}  // namespace

Fingerprint fingerprint(const CsrMatrix& m, int threads) {
  const int nthreads = build::resolve_threads(threads);
  // Chunk count is a function of nnz alone and the per-chunk hashes combine
  // in chunk order, so the result is independent of the thread count.
  const auto nnz = static_cast<std::size_t>(m.nnz());
  const int nchunks = static_cast<int>(std::clamp<std::size_t>(nnz / 65536, 1, 256));
  const auto rowptr = m.rowptr();
  const auto colind = m.colind();
  const auto values = m.values();
  std::vector<std::uint64_t> chunk_hash(static_cast<std::size_t>(nchunks));
#pragma omp parallel for default(none) \
    shared(chunk_hash, rowptr, colind, values, nchunks) num_threads(nthreads) \
    schedule(static)
  for (int c = 0; c < nchunks; ++c) {
    std::uint64_t h = kFnvOffset;
    h = hash_chunk(rowptr, nchunks, c, h);
    h = hash_chunk(colind, nchunks, c, h);
    h = hash_chunk(values, nchunks, c, h);
    chunk_hash[static_cast<std::size_t>(c)] = h;
  }
  std::uint64_t h = kFnvOffset;
  for (const std::uint64_t ch : chunk_hash) {
    h ^= ch;
    h *= kFnvPrime;
  }
  return Fingerprint{h, m.nrows(), m.ncols(), m.nnz()};
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {}

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

void PlanCache::note_hit() {
  ++stats_.hits;
  if (obs::enabled()) obs::Registry::global().counter("tuner.plan_cache.hit").add();
}

void PlanCache::note_miss() {
  ++stats_.misses;
  if (obs::enabled()) obs::Registry::global().counter("tuner.plan_cache.miss").add();
}

void PlanCache::evict_locked() {
  while (plans_.size() + prepared_.size() > capacity_) {
    // Evict the globally least-recently-used entry across both maps. The
    // maps are capacity-bounded vectors, so a linear scan is the whole cost.
    const auto plan_it =
        std::min_element(plans_.begin(), plans_.end(),
                         [](const PlanEntry& a, const PlanEntry& b) {
                           return a.last_used < b.last_used;
                         });
    const auto prep_it =
        std::min_element(prepared_.begin(), prepared_.end(),
                         [](const PreparedEntry& a, const PreparedEntry& b) {
                           return a.last_used < b.last_used;
                         });
    const std::uint64_t plan_age =
        plan_it != plans_.end() ? plan_it->last_used : ~std::uint64_t{0};
    const std::uint64_t prep_age =
        prep_it != prepared_.end() ? prep_it->last_used : ~std::uint64_t{0};
    if (plan_age <= prep_age) {
      plans_.erase(plan_it);
    } else {
      prepared_.erase(prep_it);
    }
  }
}

OptimizationPlan PlanCache::tune(const Autotuner& tuner, const CsrMatrix& m,
                                 const TuneOptions& opts) {
  const PlanKey key{&tuner, fingerprint(m), opts.policy, opts.classifier,
                    opts.collect_trace};
  {
    std::lock_guard<std::mutex> lock{mutex_};
    for (PlanEntry& e : plans_) {
      if (e.key == key) {
        e.last_used = ++tick_;
        note_hit();
        return e.plan;
      }
    }
    note_miss();
  }
  // Tune outside the lock: concurrent misses may duplicate work, never block
  // each other behind a long inspection.
  OptimizationPlan plan = tuner.tune(m, opts);
  std::lock_guard<std::mutex> lock{mutex_};
  plans_.push_back(PlanEntry{key, plan, ++tick_});
  evict_locked();
  return plan;
}

std::shared_ptr<const kernels::PreparedSpmv> PlanCache::prepare(
    const CsrMatrix& m, const kernels::SpmvOptions& opts) {
  const PreparedKey key{&m,
                        m.rowptr().data(),
                        m.colind().data(),
                        m.values().data(),
                        fingerprint(m),
                        opts.config,
                        opts.threads,
                        opts.first_touch,
                        opts.block_width};
  {
    std::lock_guard<std::mutex> lock{mutex_};
    for (PreparedEntry& e : prepared_) {
      if (e.key == key) {
        e.last_used = ++tick_;
        note_hit();
        return e.prepared;
      }
    }
    note_miss();
  }
  auto prepared = std::make_shared<const kernels::PreparedSpmv>(m, opts);
  std::lock_guard<std::mutex> lock{mutex_};
  prepared_.push_back(PreparedEntry{key, prepared, ++tick_});
  evict_locked();
  return prepared;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return plans_.size() + prepared_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock{mutex_};
  plans_.clear();
  prepared_.clear();
}

}  // namespace sparta::tuner
