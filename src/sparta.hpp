// sparta — umbrella public header.
//
// sparta (SPArse Runtime Tuning & Analysis) is a lightweight, matrix- and
// architecture-adaptive SpMV optimizer reproducing Elafrou, Goumas &
// Koziris, "Performance Analysis and Optimization of Sparse Matrix-Vector
// Multiplication on Modern Multi- and Many-Core Processors" (IPDPS 2017).
//
// Typical use (see examples/quickstart.cpp):
//
//   auto matrix = sparta::mm::read_csr_file("matrix.mtx");
//   sparta::Autotuner tuner{sparta::knl()};
//   auto plan = tuner.tune(matrix);  // TuneOptions selects the strategy
//   // plan.classes  — detected bottlenecks, plan.config — kernel variant
//   sparta::kernels::PreparedSpmv spmv{matrix, {.config = plan.config}};
//   spmv.run(x, y);              // y = A x (spans; alpha/beta optional)
//   spmv.run(X, Y);              // Y = A X over rows x k operand views:
//                                // one matrix read per k right-hand sides
//
// Telemetry (sparta::obs) is off by default; set SPARTA_TELEMETRY=1 (or call
// obs::set_enabled(true)) to collect counters and tuning traces.
#pragma once

#include "common/prng.hpp"          // IWYU pragma: export
#include "common/statistics.hpp"    // IWYU pragma: export
#include "common/table.hpp"         // IWYU pragma: export
#include "common/timer.hpp"         // IWYU pragma: export
#include "common/types.hpp"         // IWYU pragma: export
#include "engine/solver_engine.hpp" // IWYU pragma: export
#include "features/features.hpp"    // IWYU pragma: export
#include "gen/generators.hpp"       // IWYU pragma: export
#include "gen/suite.hpp"            // IWYU pragma: export
#include "kernels/kernel_registry.hpp"  // IWYU pragma: export
#include "machine/machine_spec.hpp" // IWYU pragma: export
#include "ml/cross_validation.hpp"  // IWYU pragma: export
#include "obs/telemetry.hpp"        // IWYU pragma: export
#include "obs/trace.hpp"            // IWYU pragma: export
#include "sim/simulator.hpp"        // IWYU pragma: export
#include "solvers/cg.hpp"           // IWYU pragma: export
#include "solvers/gmres.hpp"        // IWYU pragma: export
#include "sparse/build.hpp"         // IWYU pragma: export
#include "sparse/csr.hpp"           // IWYU pragma: export
#include "sparse/matrix_market.hpp" // IWYU pragma: export
#include "tuner/grid_search.hpp"    // IWYU pragma: export
#include "tuner/host_profiler.hpp"  // IWYU pragma: export
#include "tuner/optimizer.hpp"      // IWYU pragma: export
#include "tuner/plan_cache.hpp"     // IWYU pragma: export
#include "tuner/partitioned_bounds.hpp"  // IWYU pragma: export
#include "vendor/inspector_executor.hpp"  // IWYU pragma: export
#include "vendor/vendor_csr.hpp"    // IWYU pragma: export
