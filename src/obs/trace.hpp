// Structured decision traces — the "why" record of one tuning run.
//
// A TuneTrace captures everything the paper's decision procedure looked at
// for one matrix: the structural features it computed, the per-class bound
// ratios, the bottleneck classes it detected, the kernel configuration it
// chose, the modeled/measured costs, and the wall-clock microseconds each
// pipeline phase took. Traces serialize to JSON-Lines (one object per line)
// and parse back exactly, so the amortization analysis (paper Table V,
// bench/table5_amortization) can be re-derived offline from a trace file
// alone: N_iters,min = t_pre_seconds / (t_vendor_seconds - t_spmv_seconds).
//
// This is cold-path data (built once per tuning run); it is always compiled
// in, independent of the SPARTA_TELEMETRY hot-path switch.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/timer.hpp"

namespace sparta::obs {

/// One timed pipeline phase.
struct PhaseCost {
  std::string name;
  double micros = 0.0;

  friend bool operator==(const PhaseCost&, const PhaseCost&) = default;
};

/// Named scalar (features, bounds, tool-specific extras).
using NamedValue = std::pair<std::string, double>;

struct TuneTrace {
  std::string matrix;    // label (file name, suite name, ...)
  std::string strategy;  // "profile", "feature", "oracle", ...
  std::int64_t nrows = 0;
  std::int64_t nnz = 0;
  std::vector<NamedValue> features;  // paper Table I values, as computed
  std::vector<NamedValue> bounds;    // P_* rates and bound/baseline ratios
  std::vector<std::string> classes;  // detected bottlenecks ("MB", "ML", ...)
  std::uint32_t class_mask = 0;      // same, as a BottleneckSet mask
  std::vector<std::string> optimizations;
  std::string config;  // KernelConfig::describe()
  double gflops = 0.0;
  double t_spmv_seconds = 0.0;
  double t_pre_seconds = 0.0;
  std::vector<PhaseCost> phases;    // per-phase tuning cost, microseconds
  std::vector<NamedValue> extra;    // tool-specific (e.g. t_vendor_seconds)

  /// Microseconds of the named phase; 0 when absent.
  [[nodiscard]] double phase_micros(std::string_view name) const;
  [[nodiscard]] double total_phase_micros() const;
  /// Value from `extra` (then `bounds`, then `features`); 0 when absent.
  [[nodiscard]] double value_or_zero(std::string_view name) const;

  /// One JSON object, no trailing newline.
  [[nodiscard]] std::string to_jsonl() const;
  /// Inverse of to_jsonl(); throws std::runtime_error on malformed input.
  static TuneTrace from_jsonl(std::string_view line);

  friend bool operator==(const TuneTrace&, const TuneTrace&) = default;
};

/// RAII phase stopwatch: appends {name, elapsed micros} to `out` on
/// destruction. `out` must outlive the ScopedPhase.
class ScopedPhase {
 public:
  ScopedPhase(std::vector<PhaseCost>& out, std::string name)
      : out_(&out), name_(std::move(name)) {}
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() { out_->push_back({std::move(name_), timer_.seconds() * 1e6}); }

 private:
  std::vector<PhaseCost>* out_;
  std::string name_;
  Timer timer_;
};

}  // namespace sparta::obs
