// Minimal JSON support for the telemetry exporters (obs/) — a writer with
// round-trip-exact doubles and a small recursive-descent parser, just enough
// to serialize and re-load the flat records this subsystem emits (JSON-Lines
// traces and metric snapshots). Not a general-purpose JSON library: no
// \uXXXX escapes beyond pass-through, no streaming, documents are expected
// to fit in memory.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sparta::obs::json {

/// Append `s` as a quoted JSON string (escaping ", \, and control chars).
void append_quoted(std::string& out, std::string_view s);

/// Append a double with enough digits to round-trip exactly (to_chars
/// shortest form); emits 0 for NaN/Inf, which JSON cannot represent.
void append_number(std::string& out, double v);

/// A parsed JSON value. Objects preserve insertion order.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }

  /// Accessors throw std::runtime_error on type mismatch.
  [[nodiscard]] bool boolean() const;
  [[nodiscard]] double number() const;
  [[nodiscard]] const std::string& str() const;
  [[nodiscard]] const std::vector<Value>& array() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;
  /// Object member lookup; throws std::runtime_error when absent.
  [[nodiscard]] const Value& at(std::string_view key) const;

  /// Parse one JSON document; throws std::runtime_error on malformed input
  /// or trailing garbage.
  static Value parse(std::string_view text);

 private:
  struct Parser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

}  // namespace sparta::obs::json
