#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace sparta::obs::json {

void append_quoted(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out.push_back('0');
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

bool Value::boolean() const {
  if (type_ != Type::kBool) throw std::runtime_error{"json: not a bool"};
  return bool_;
}

double Value::number() const {
  if (type_ != Type::kNumber) throw std::runtime_error{"json: not a number"};
  return number_;
}

const std::string& Value::str() const {
  if (type_ != Type::kString) throw std::runtime_error{"json: not a string"};
  return string_;
}

const std::vector<Value>& Value::array() const {
  if (type_ != Type::kArray) throw std::runtime_error{"json: not an array"};
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::object() const {
  if (type_ != Type::kObject) throw std::runtime_error{"json: not an object"};
  return object_;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) throw std::runtime_error{"json: missing key '" + std::string{key} + "'"};
  return *v;
}

struct Value::Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error{"json parse error at offset " + std::to_string(pos) + ": " + why};
  }

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])) != 0) ++pos;
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      char e = text[pos++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // The writer only emits \u00XX for control bytes; decode the
          // single-byte range and pass anything else through as '?'.
          out.push_back(code < 0x100 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value parse_value() {
    skip_ws();
    Value v;
    const char c = peek();
    if (c == '{') {
      ++pos;
      v.type_ = Type::kObject;
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.object_.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos;
      v.type_ = Type::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return v;
      }
      while (true) {
        v.array_.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.type_ = Type::kString;
      v.string_ = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      v.type_ = Type::kBool;
      v.bool_ = true;
      return v;
    }
    if (consume_literal("false")) {
      v.type_ = Type::kBool;
      v.bool_ = false;
      return v;
    }
    if (consume_literal("null")) return v;
    // Number.
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    double num = 0.0;
    const auto res = std::from_chars(text.data() + start, text.data() + pos, num);
    if (res.ec != std::errc{} || res.ptr != text.data() + pos) fail("bad number");
    v.type_ = Type::kNumber;
    v.number_ = num;
    return v;
  }
};

Value Value::parse(std::string_view text) {
  Parser p{text};
  Value v = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing garbage");
  return v;
}

}  // namespace sparta::obs::json
