// sparta::obs — low-overhead, thread-safe telemetry.
//
// A Registry holds named counters, gauges and histograms. Each metric owns
// one cache-line-padded slot per OpenMP thread; the hot-path record calls
// (`Counter::add`, `Histogram::record`) index the caller's slot by thread id
// and perform a plain (non-atomic) update — no contention, no fences, no
// allocation. Slots are merged under the registry lock only when a snapshot
// is read. `Gauge::set` is last-writer-wins across threads and pays one
// relaxed fetch_add to order writers; treat it as a cold-path call.
//
// Two off switches, both leaving call sites untouched:
//  - runtime: telemetry is DISABLED by default; enable with the
//    SPARTA_TELEMETRY environment variable (any value except "", "0",
//    "off", "false") or obs::set_enabled(true). Handles created while
//    disabled are permanently inert (a single null-pointer test per record
//    call, zero allocation) — enable telemetry before creating handles.
//  - compile time: configure with -DSPARTA_TELEMETRY=OFF (which defines
//    SPARTA_TELEMETRY_ENABLED=0) and every type below collapses to an empty
//    no-op whose emptiness is enforced by static_asserts — the hot path
//    compiles to nothing.
//
// Thread-id mapping uses omp_get_thread_num() masked to a power-of-two slot
// count sized for omp_get_max_threads() at Registry construction; threads
// beyond that (e.g. nested parallelism) share slots and may lose updates —
// acceptable for telemetry, never for correctness-bearing data.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/types.hpp"

#ifndef SPARTA_TELEMETRY_ENABLED
#define SPARTA_TELEMETRY_ENABLED 1
#endif

#if SPARTA_TELEMETRY_ENABLED
#include <omp.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#endif

namespace sparta::obs {

/// True when the telemetry hot path is compiled in (SPARTA_TELEMETRY=ON).
inline constexpr bool kCompiledIn = SPARTA_TELEMETRY_ENABLED != 0;

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

std::string_view to_string(Kind k);

inline constexpr int kHistBuckets = 40;
/// Bucket i covers values with binary exponent i - kHistBias; bucket 0 also
/// absorbs everything <= 2^-kHistBias (including zero and negatives).
inline constexpr int kHistBias = 8;

/// Merged histogram state as read from a snapshot. Buckets are logarithmic:
/// bucket i counts values v with ilogb(v) == i - kHistBias (clamped), so
/// quantiles are exponent-resolution estimates.
struct HistogramStats {
  double count = 0.0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> buckets;

  [[nodiscard]] double mean() const { return count > 0.0 ? sum / count : 0.0; }
  /// Approximate q-quantile (q in [0,1]) from the log buckets.
  [[nodiscard]] double quantile(double q) const;
};

/// One merged metric as read from Registry::snapshot().
struct MetricSample {
  std::string name;
  Kind kind = Kind::kCounter;
  /// Counter: total. Gauge: last value set (0 if never set).
  double value = 0.0;
  /// Populated for kHistogram only.
  HistogramStats hist;
};

/// Render samples as JSON-Lines (one object per metric per line).
void write_jsonl(std::ostream& os, const std::vector<MetricSample>& samples);

/// Render samples as a human-readable table.
void print_table(std::ostream& os, const std::vector<MetricSample>& samples);

/// Runtime toggle. Defaults to the SPARTA_TELEMETRY environment variable;
/// always false when compiled out.
bool enabled();
void set_enabled(bool on);

#if SPARTA_TELEMETRY_ENABLED

namespace detail {

struct alignas(kCacheLineBytes) ScalarSlot {
  double value = 0.0;
  /// Gauges only: global sequence of the last set(); 0 = never written.
  std::uint64_t seq = 0;
};

struct alignas(kCacheLineBytes) HistSlot {
  double count = 0.0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::array<double, kHistBuckets> buckets{};
};

inline std::uint32_t slot_index(std::uint32_t mask) {
  return static_cast<std::uint32_t>(omp_get_thread_num()) & mask;
}

inline int bucket_of(double v) {
  if (!(v > 0.0)) return 0;
  const int b = std::ilogb(v) + kHistBias;
  return b < 0 ? 0 : (b >= kHistBuckets ? kHistBuckets - 1 : b);
}

}  // namespace detail

class Registry;

/// Monotonic sum. Handles are trivially copyable; a default-constructed or
/// disabled-registry handle is inert.
class Counter {
 public:
  Counter() = default;

  void add(double v = 1.0) const noexcept {
    if (slots_ == nullptr) return;
    slots_[detail::slot_index(mask_)].value += v;
  }

 private:
  friend class Registry;
  Counter(detail::ScalarSlot* slots, std::uint32_t mask) : slots_(slots), mask_(mask) {}
  detail::ScalarSlot* slots_ = nullptr;
  std::uint32_t mask_ = 0;
};

/// Last-writer-wins point-in-time value. set() pays one relaxed atomic
/// increment (to order writers across threads) — cold path only.
class Gauge {
 public:
  Gauge() = default;

  void set(double v) const noexcept {
    if (slots_ == nullptr) return;
    auto& s = slots_[detail::slot_index(mask_)];
    s.value = v;
    s.seq = 1 + seq_->fetch_add(1, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Gauge(detail::ScalarSlot* slots, std::uint32_t mask, std::atomic<std::uint64_t>* seq)
      : slots_(slots), mask_(mask), seq_(seq) {}
  detail::ScalarSlot* slots_ = nullptr;
  std::uint32_t mask_ = 0;
  std::atomic<std::uint64_t>* seq_ = nullptr;
};

/// Log-bucketed distribution (count/sum/min/max + exponent buckets).
class Histogram {
 public:
  Histogram() = default;

  void record(double v) const noexcept {
    if (slots_ == nullptr) return;
    auto& s = slots_[detail::slot_index(mask_)];
    s.count += 1.0;
    s.sum += v;
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
    s.buckets[static_cast<std::size_t>(detail::bucket_of(v))] += 1.0;
  }

 private:
  friend class Registry;
  Histogram(detail::HistSlot* slots, std::uint32_t mask) : slots_(slots), mask_(mask) {}
  detail::HistSlot* slots_ = nullptr;
  std::uint32_t mask_ = 0;
};

/// Named-metric registry. Handle creation locks a mutex and (once per name)
/// allocates the per-thread slots — do it during setup, not in hot loops.
/// If telemetry is disabled at handle-creation time the returned handle is
/// inert and nothing is allocated or recorded.
class Registry {
 public:
  /// Slot count = omp_get_max_threads() rounded up to a power of two.
  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide default registry.
  static Registry& global();

  /// Find-or-create. Throws std::invalid_argument if `name` already exists
  /// with a different kind.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  /// Merge all per-thread slots into one sample per metric, sorted by name.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Zero every slot (metric names and handles stay valid).
  void reset();

  /// Bytes currently allocated for per-thread slots (0 while disabled —
  /// the disabled-mode zero-allocation guarantee).
  [[nodiscard]] std::size_t slot_bytes() const;

 private:
  struct Entry {
    std::string name;
    Kind kind;
    std::unique_ptr<detail::ScalarSlot[]> scalars;  // counter/gauge
    std::unique_ptr<detail::HistSlot[]> hists;      // histogram
  };

  Entry& find_or_add(std::string_view name, Kind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // stable addresses
  std::uint32_t mask_ = 0;                       // nslots - 1
  std::size_t slot_bytes_ = 0;
  std::atomic<std::uint64_t> gauge_seq_{0};
};

#else  // SPARTA_TELEMETRY_ENABLED == 0: compile-time-checked no-op path.

class Counter {
 public:
  constexpr void add(double = 1.0) const noexcept {}
};

class Gauge {
 public:
  constexpr void set(double) const noexcept {}
};

class Histogram {
 public:
  constexpr void record(double) const noexcept {}
};

class Registry {
 public:
  constexpr Registry() = default;
  static Registry& global();
  constexpr Counter counter(std::string_view) { return {}; }
  constexpr Gauge gauge(std::string_view) { return {}; }
  constexpr Histogram histogram(std::string_view) { return {}; }
  [[nodiscard]] std::vector<MetricSample> snapshot() const { return {}; }
  constexpr void reset() {}
  [[nodiscard]] constexpr std::size_t slot_bytes() const { return 0; }
};

// The contract of the no-op path: stateless handles, an empty registry, and
// record calls that the optimizer can delete outright.
static_assert(std::is_empty_v<Counter> && std::is_empty_v<Gauge> && std::is_empty_v<Histogram>,
              "disabled telemetry handles must carry no state");
static_assert(std::is_empty_v<Registry>, "disabled registry must carry no state");

#endif  // SPARTA_TELEMETRY_ENABLED

}  // namespace sparta::obs
