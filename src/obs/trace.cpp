#include "obs/trace.hpp"

#include "obs/json.hpp"

namespace sparta::obs {

namespace {

void append_named_values(std::string& out, std::string_view key,
                         const std::vector<NamedValue>& values) {
  json::append_quoted(out, key);
  out += ":{";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out.push_back(',');
    json::append_quoted(out, values[i].first);
    out.push_back(':');
    json::append_number(out, values[i].second);
  }
  out += "}";
}

void append_strings(std::string& out, std::string_view key,
                    const std::vector<std::string>& values) {
  json::append_quoted(out, key);
  out += ":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out.push_back(',');
    json::append_quoted(out, values[i]);
  }
  out += "]";
}

std::vector<NamedValue> read_named_values(const json::Value& obj, std::string_view key) {
  std::vector<NamedValue> out;
  if (const json::Value* v = obj.find(key)) {
    for (const auto& [name, val] : v->object()) out.emplace_back(name, val.number());
  }
  return out;
}

std::vector<std::string> read_strings(const json::Value& obj, std::string_view key) {
  std::vector<std::string> out;
  if (const json::Value* v = obj.find(key)) {
    for (const auto& e : v->array()) out.push_back(e.str());
  }
  return out;
}

double read_number(const json::Value& obj, std::string_view key) {
  const json::Value* v = obj.find(key);
  return v != nullptr ? v->number() : 0.0;
}

std::string read_string(const json::Value& obj, std::string_view key) {
  const json::Value* v = obj.find(key);
  return v != nullptr ? v->str() : std::string{};
}

}  // namespace

double TuneTrace::phase_micros(std::string_view name) const {
  for (const auto& p : phases) {
    if (p.name == name) return p.micros;
  }
  return 0.0;
}

double TuneTrace::total_phase_micros() const {
  double sum = 0.0;
  for (const auto& p : phases) sum += p.micros;
  return sum;
}

double TuneTrace::value_or_zero(std::string_view name) const {
  for (const auto* vec : {&extra, &bounds, &features}) {
    for (const auto& [k, v] : *vec) {
      if (k == name) return v;
    }
  }
  return 0.0;
}

std::string TuneTrace::to_jsonl() const {
  std::string out = "{\"record\":\"tune_trace\",";
  json::append_quoted(out, "matrix");
  out.push_back(':');
  json::append_quoted(out, matrix);
  out.push_back(',');
  json::append_quoted(out, "strategy");
  out.push_back(':');
  json::append_quoted(out, strategy);
  out += ",\"nrows\":";
  json::append_number(out, static_cast<double>(nrows));
  out += ",\"nnz\":";
  json::append_number(out, static_cast<double>(nnz));
  out.push_back(',');
  append_named_values(out, "features", features);
  out.push_back(',');
  append_named_values(out, "bounds", bounds);
  out.push_back(',');
  append_strings(out, "classes", classes);
  out += ",\"class_mask\":";
  json::append_number(out, static_cast<double>(class_mask));
  out.push_back(',');
  append_strings(out, "optimizations", optimizations);
  out.push_back(',');
  json::append_quoted(out, "config");
  out.push_back(':');
  json::append_quoted(out, config);
  out += ",\"gflops\":";
  json::append_number(out, gflops);
  out += ",\"t_spmv_seconds\":";
  json::append_number(out, t_spmv_seconds);
  out += ",\"t_pre_seconds\":";
  json::append_number(out, t_pre_seconds);
  out.push_back(',');
  json::append_quoted(out, "phases");
  out += ":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += "{\"phase\":";
    json::append_quoted(out, phases[i].name);
    out += ",\"micros\":";
    json::append_number(out, phases[i].micros);
    out.push_back('}');
  }
  out += "],";
  append_named_values(out, "extra", extra);
  out.push_back('}');
  return out;
}

TuneTrace TuneTrace::from_jsonl(std::string_view line) {
  const json::Value obj = json::Value::parse(line);
  TuneTrace t;
  t.matrix = read_string(obj, "matrix");
  t.strategy = read_string(obj, "strategy");
  t.nrows = static_cast<std::int64_t>(read_number(obj, "nrows"));
  t.nnz = static_cast<std::int64_t>(read_number(obj, "nnz"));
  t.features = read_named_values(obj, "features");
  t.bounds = read_named_values(obj, "bounds");
  t.classes = read_strings(obj, "classes");
  t.class_mask = static_cast<std::uint32_t>(read_number(obj, "class_mask"));
  t.optimizations = read_strings(obj, "optimizations");
  t.config = read_string(obj, "config");
  t.gflops = read_number(obj, "gflops");
  t.t_spmv_seconds = read_number(obj, "t_spmv_seconds");
  t.t_pre_seconds = read_number(obj, "t_pre_seconds");
  if (const json::Value* phases = obj.find("phases")) {
    for (const auto& p : phases->array()) {
      t.phases.push_back({p.at("phase").str(), p.at("micros").number()});
    }
  }
  t.extra = read_named_values(obj, "extra");
  return t;
}

}  // namespace sparta::obs
