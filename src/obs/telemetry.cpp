#include "obs/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <stdexcept>

#include "common/table.hpp"
#include "obs/json.hpp"

namespace sparta::obs {

std::string_view to_string(Kind k) {
  switch (k) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

double HistogramStats::quantile(double q) const {
  if (count <= 0.0 || buckets.empty()) return 0.0;
  const double target = q * count;
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum >= target) {
      // Representative value: the geometric midpoint of the bucket,
      // clamped into the observed range.
      const double mid = std::ldexp(1.5, static_cast<int>(i) - kHistBias);
      return std::clamp(mid, min, max);
    }
  }
  return max;
}

void write_jsonl(std::ostream& os, const std::vector<MetricSample>& samples) {
  for (const auto& s : samples) {
    std::string line = "{\"metric\":";
    json::append_quoted(line, s.name);
    line += ",\"kind\":";
    json::append_quoted(line, to_string(s.kind));
    if (s.kind == Kind::kHistogram) {
      line += ",\"count\":";
      json::append_number(line, s.hist.count);
      line += ",\"sum\":";
      json::append_number(line, s.hist.sum);
      line += ",\"min\":";
      json::append_number(line, s.hist.min);
      line += ",\"max\":";
      json::append_number(line, s.hist.max);
      line += ",\"buckets\":[";
      for (std::size_t i = 0; i < s.hist.buckets.size(); ++i) {
        if (i != 0) line.push_back(',');
        json::append_number(line, s.hist.buckets[i]);
      }
      line += "]";
    } else {
      line += ",\"value\":";
      json::append_number(line, s.value);
    }
    line += "}\n";
    os << line;
  }
}

void print_table(std::ostream& os, const std::vector<MetricSample>& samples) {
  Table t{{"metric", "kind", "value/count", "mean", "p50", "p95", "max"}};
  for (const auto& s : samples) {
    if (s.kind == Kind::kHistogram) {
      t.add_row({s.name, std::string{to_string(s.kind)}, Table::num(s.hist.count, 0),
                 Table::num(s.hist.mean(), 3), Table::num(s.hist.quantile(0.5), 3),
                 Table::num(s.hist.quantile(0.95), 3), Table::num(s.hist.max, 3)});
    } else {
      t.add_row({s.name, std::string{to_string(s.kind)}, Table::num(s.value, 3), "-", "-", "-",
                 "-"});
    }
  }
  t.print(os);
}

#if SPARTA_TELEMETRY_ENABLED

namespace {

bool env_default() {
  const char* e = std::getenv("SPARTA_TELEMETRY");
  if (e == nullptr) return false;
  const std::string_view v{e};
  return !(v.empty() || v == "0" || v == "off" || v == "false");
}

bool& enabled_flag() {
  static bool flag = env_default();
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag(); }

void set_enabled(bool on) { enabled_flag() = on; }

namespace {

std::uint32_t slot_mask() {
  const int want = std::max(1, omp_get_max_threads());
  std::uint32_t n = 1;
  while (n < static_cast<std::uint32_t>(want)) n <<= 1;
  return n - 1;
}

}  // namespace

Registry::Registry() : mask_(slot_mask()) {}

Registry& Registry::global() {
  static Registry reg;
  return reg;
}

Registry::Entry& Registry::find_or_add(std::string_view name, Kind kind) {
  for (auto& e : entries_) {
    if (e->name == name) {
      if (e->kind != kind) {
        throw std::invalid_argument{"obs::Registry: metric '" + std::string{name} +
                                    "' already registered as " +
                                    std::string{to_string(e->kind)}};
      }
      return *e;
    }
  }
  auto e = std::make_unique<Entry>();
  e->name = std::string{name};
  e->kind = kind;
  const std::size_t n = static_cast<std::size_t>(mask_) + 1;
  if (kind == Kind::kHistogram) {
    e->hists = std::make_unique<detail::HistSlot[]>(n);
    slot_bytes_ += n * sizeof(detail::HistSlot);
  } else {
    e->scalars = std::make_unique<detail::ScalarSlot[]>(n);
    slot_bytes_ += n * sizeof(detail::ScalarSlot);
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter Registry::counter(std::string_view name) {
  if (!enabled()) return {};
  const std::lock_guard<std::mutex> lock{mu_};
  return Counter{find_or_add(name, Kind::kCounter).scalars.get(), mask_};
}

Gauge Registry::gauge(std::string_view name) {
  if (!enabled()) return {};
  const std::lock_guard<std::mutex> lock{mu_};
  return Gauge{find_or_add(name, Kind::kGauge).scalars.get(), mask_, &gauge_seq_};
}

Histogram Registry::histogram(std::string_view name) {
  if (!enabled()) return {};
  const std::lock_guard<std::mutex> lock{mu_};
  return Histogram{find_or_add(name, Kind::kHistogram).hists.get(), mask_};
}

std::vector<MetricSample> Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock{mu_};
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  const std::size_t n = static_cast<std::size_t>(mask_) + 1;
  for (const auto& e : entries_) {
    MetricSample s;
    s.name = e->name;
    s.kind = e->kind;
    if (e->kind == Kind::kHistogram) {
      s.hist.buckets.assign(kHistBuckets, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        const auto& slot = e->hists[i];
        if (slot.count <= 0.0) continue;
        s.hist.count += slot.count;
        s.hist.sum += slot.sum;
        s.hist.min = s.hist.count == slot.count ? slot.min : std::min(s.hist.min, slot.min);
        s.hist.max = std::max(s.hist.max, slot.max);
        for (int b = 0; b < kHistBuckets; ++b) {
          s.hist.buckets[static_cast<std::size_t>(b)] += slot.buckets[static_cast<std::size_t>(b)];
        }
      }
      if (s.hist.count <= 0.0) {
        s.hist.min = 0.0;
        s.hist.max = 0.0;
      }
    } else if (e->kind == Kind::kCounter) {
      for (std::size_t i = 0; i < n; ++i) s.value += e->scalars[i].value;
    } else {  // gauge: last writer wins
      std::uint64_t best = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (e->scalars[i].seq > best) {
          best = e->scalars[i].seq;
          s.value = e->scalars[i].value;
        }
      }
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return out;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock{mu_};
  const std::size_t n = static_cast<std::size_t>(mask_) + 1;
  for (auto& e : entries_) {
    if (e->kind == Kind::kHistogram) {
      for (std::size_t i = 0; i < n; ++i) e->hists[i] = detail::HistSlot{};
    } else {
      for (std::size_t i = 0; i < n; ++i) e->scalars[i] = detail::ScalarSlot{};
    }
  }
  gauge_seq_.store(0, std::memory_order_relaxed);
}

std::size_t Registry::slot_bytes() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return slot_bytes_;
}

#else  // SPARTA_TELEMETRY_ENABLED == 0

bool enabled() { return false; }

void set_enabled(bool) {}

Registry& Registry::global() {
  static Registry reg;
  return reg;
}

#endif  // SPARTA_TELEMETRY_ENABLED

}  // namespace sparta::obs
