#include "sparse/coo.hpp"

#include <algorithm>
#include <stdexcept>

namespace sparta {

CooMatrix::CooMatrix(index_t nrows, index_t ncols) : nrows_(nrows), ncols_(ncols) {
  if (nrows < 0 || ncols < 0) {
    throw std::invalid_argument{"CooMatrix: negative dimension"};
  }
}

CooMatrix CooMatrix::from_triplets(index_t nrows, index_t ncols,
                                   std::vector<Triplet> entries) {
  CooMatrix coo{nrows, ncols};
  for (const Triplet& t : entries) {
    if (t.row < 0 || t.row >= nrows || t.col < 0 || t.col >= ncols) {
      throw std::out_of_range{"CooMatrix::from_triplets: coordinate out of range"};
    }
  }
  coo.entries_ = std::move(entries);
  return coo;
}

void CooMatrix::add(index_t row, index_t col, value_t value) {
  if (row < 0 || row >= nrows_ || col < 0 || col >= ncols_) {
    throw std::out_of_range{"CooMatrix::add: coordinate out of range"};
  }
  entries_.push_back({row, col, value});
}

void CooMatrix::compress() {
  auto key_less = [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  };
  std::sort(entries_.begin(), entries_.end(), key_less);
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size();) {
    Triplet acc = entries_[i];
    std::size_t j = i + 1;
    while (j < entries_.size() && entries_[j].row == acc.row && entries_[j].col == acc.col) {
      acc.value += entries_[j].value;
      ++j;
    }
    entries_[out++] = acc;
    i = j;
  }
  entries_.resize(out);
}

bool CooMatrix::is_compressed() const {
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const auto& a = entries_[i - 1];
    const auto& b = entries_[i];
    if (a.row > b.row || (a.row == b.row && a.col >= b.col)) return false;
  }
  return true;
}

}  // namespace sparta
