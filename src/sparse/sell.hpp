// SELL-C-sigma storage (Kreutzer, Hager, Wellein, Fehske, Bishop 2014 —
// cited in the paper's introduction as a unified SIMD-friendly format).
//
// Rows are sorted by descending length inside windows of `sigma` rows, then
// packed into chunks of `C` consecutive rows; each chunk is stored
// column-major and padded to its longest row, so a SIMD unit of width C can
// process one chunk with unit-stride loads of values/colind. The sorting
// bounds the padding; sigma = 1 degenerates to ELLPACK-on-chunks
// (no reordering), sigma = nrows is a full sort.
//
// Role in this repo: the realistic "internal format" of the vendor
// inspector-executor (MKL's ESB format is a SELL variant), and a
// literature-grade comparison point for the optimization pool.
#pragma once

#include <span>

#include "common/numa.hpp"
#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace sparta {

class SellMatrix {
 public:
  /// Convert from CSR. `chunk` is C (rows per chunk, typically the SIMD
  /// width), `sigma` the sorting window in rows (rounded up to a multiple
  /// of `chunk`). Throws std::invalid_argument on non-positive parameters.
  /// The conversion is a parallel builder (window sorts and chunk packing
  /// are independent); `threads` = 0 means omp_get_max_threads() and the
  /// output is bit-identical to from_csr_serial for every thread count.
  static SellMatrix from_csr(const CsrMatrix& m, index_t chunk = 8, index_t sigma = 256,
                             int threads = 0);

  /// Single-threaded reference builder (the pre-pipeline implementation);
  /// kept as the bit-identity oracle for tests and the preprocessing bench.
  static SellMatrix from_csr_serial(const CsrMatrix& m, index_t chunk = 8,
                                    index_t sigma = 256);

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  /// True stored nonzeros (excluding padding).
  [[nodiscard]] offset_t nnz() const { return nnz_; }
  /// Stored elements including padding.
  [[nodiscard]] offset_t padded_nnz() const { return static_cast<offset_t>(values_.size()); }
  /// padded_nnz / nnz — the format's storage overhead (1.0 = no padding).
  [[nodiscard]] double padding_ratio() const {
    return nnz_ > 0 ? static_cast<double>(padded_nnz()) / static_cast<double>(nnz_) : 1.0;
  }

  [[nodiscard]] index_t chunk_rows() const { return chunk_; }
  [[nodiscard]] index_t nchunks() const { return static_cast<index_t>(chunk_len_.size()); }
  /// Width (padded row length) of chunk k.
  [[nodiscard]] index_t chunk_len(index_t k) const {
    return chunk_len_[static_cast<std::size_t>(k)];
  }
  /// Offset of chunk k's first element in values()/colind().
  [[nodiscard]] offset_t chunk_offset(index_t k) const {
    return chunk_off_[static_cast<std::size_t>(k)];
  }
  /// Original row index stored in sorted position p (p in [0, nrows)).
  [[nodiscard]] index_t row_of(index_t p) const { return perm_[static_cast<std::size_t>(p)]; }
  /// Actual (unpadded) length of the row at sorted position p.
  [[nodiscard]] index_t row_len(index_t p) const {
    return row_len_[static_cast<std::size_t>(p)];
  }

  /// Column-major chunk data; padding lanes carry colind 0 / value 0.
  [[nodiscard]] std::span<const index_t> colind() const { return colind_; }
  [[nodiscard]] std::span<const value_t> values() const { return values_; }

  /// Bytes of index structures (colind + chunk descriptors + permutation).
  [[nodiscard]] std::size_t index_bytes() const;
  [[nodiscard]] std::size_t value_bytes() const { return values_.size() * sizeof(value_t); }
  [[nodiscard]] std::size_t bytes() const { return index_bytes() + value_bytes(); }

  /// Convert back to CSR (round-trip tested).
  [[nodiscard]] CsrMatrix to_csr() const;

 private:
  SellMatrix() = default;

  index_t nrows_ = 0;
  index_t ncols_ = 0;
  index_t chunk_ = 8;
  index_t sigma_ = 256;
  offset_t nnz_ = 0;
  numa_vector<index_t> perm_;      // sorted position -> original row
  numa_vector<index_t> row_len_;   // per sorted position
  numa_vector<index_t> chunk_len_; // per chunk: padded width
  numa_vector<offset_t> chunk_off_;
  numa_vector<index_t> colind_;    // column-major per chunk, padded
  numa_vector<value_t> values_;
};

/// Serial reference SpMV on SELL (golden implementation for tests).
void spmv_sell_reference(const SellMatrix& a, std::span<const value_t> x,
                         std::span<value_t> y);

}  // namespace sparta
