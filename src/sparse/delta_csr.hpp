// Delta-compressed CSR — the paper's MB-class optimization (Table II).
//
// Column indices are stored as deltas from the previous nonzero in the same
// row (the first nonzero of each row stores its absolute column in a
// separate array). All deltas use a single width — 8 or 16 bits, "but never
// both, in order to limit the branching overhead" (paper §III-E). When a
// matrix has a delta that does not fit in 16 bits, compression is refused
// and the caller keeps plain CSR.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/numa.hpp"
#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace sparta {

/// Width of the delta stream.
enum class DeltaWidth : std::uint8_t { k8 = 1, k16 = 2 };

/// CSR with a compressed column-index stream.
class DeltaCsrMatrix {
 public:
  /// Attempt compression. Returns std::nullopt when any intra-row column
  /// delta exceeds 16 bits (the paper's scheme then does not apply). The
  /// conversion is a parallel two-pass builder over exactly-sized,
  /// first-touched arrays; `threads` = 0 means omp_get_max_threads() and the
  /// output is bit-identical to compress_serial for every thread count.
  static std::optional<DeltaCsrMatrix> compress(const CsrMatrix& csr, int threads = 0);

  /// Single-threaded reference builder (the pre-pipeline implementation);
  /// kept as the bit-identity oracle for tests and the preprocessing bench.
  static std::optional<DeltaCsrMatrix> compress_serial(const CsrMatrix& csr);

  /// Smallest single width that can represent every delta of `csr`,
  /// or std::nullopt when 16 bits do not suffice.
  static std::optional<DeltaWidth> pick_width(const CsrMatrix& csr);

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] offset_t nnz() const { return rowptr_.back(); }
  [[nodiscard]] DeltaWidth width() const { return width_; }

  [[nodiscard]] std::span<const offset_t> rowptr() const { return rowptr_; }
  [[nodiscard]] std::span<const index_t> first_col() const { return first_col_; }
  [[nodiscard]] std::span<const std::uint8_t> deltas8() const { return deltas8_; }
  [[nodiscard]] std::span<const std::uint16_t> deltas16() const { return deltas16_; }
  [[nodiscard]] std::span<const value_t> values() const { return values_; }

  /// Bytes of the compressed index structures (rowptr + first_col + deltas).
  [[nodiscard]] std::size_t index_bytes() const;
  [[nodiscard]] std::size_t value_bytes() const { return values_.size() * sizeof(value_t); }
  [[nodiscard]] std::size_t bytes() const { return index_bytes() + value_bytes(); }

  /// Expand back to plain CSR (round-trip tested).
  [[nodiscard]] CsrMatrix decompress() const;

 private:
  DeltaCsrMatrix() = default;

  index_t nrows_ = 0;
  index_t ncols_ = 0;
  DeltaWidth width_ = DeltaWidth::k8;
  numa_vector<offset_t> rowptr_;
  numa_vector<index_t> first_col_;      // absolute column of each row's first nnz
  numa_vector<std::uint8_t> deltas8_;   // used when width_ == k8; nnz entries
  numa_vector<std::uint16_t> deltas16_; // used when width_ == k16; nnz entries
  numa_vector<value_t> values_;
};

}  // namespace sparta
