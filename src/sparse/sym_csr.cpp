#include "sparse/sym_csr.hpp"

#include <algorithm>
#include <vector>

#include "check/contract.hpp"
#include "check/validate.hpp"
#include "sparse/build.hpp"
#include "sparse/coo.hpp"

namespace sparta {

namespace {

/// Per-chunk classification totals for the parallel count pass.
struct ChunkTally {
  offset_t lower_nnz = 0;
  offset_t upper_nnz = 0;
  index_t diag_rows = 0;
};

/// True iff the stored strict-lower structure holds (row, col) with a
/// bit-identical value (binary search; columns are sorted within a row).
bool lower_mirror_matches(std::span<const offset_t> rowptr, std::span<const index_t> colind,
                          std::span<const value_t> values, index_t row, index_t col,
                          value_t v) {
  const auto first = colind.begin() +
                     static_cast<std::ptrdiff_t>(rowptr[static_cast<std::size_t>(row)]);
  const auto last = colind.begin() +
                    static_cast<std::ptrdiff_t>(rowptr[static_cast<std::size_t>(row) + 1]);
  const auto it = std::lower_bound(first, last, col);
  if (it == last || *it != col) return false;
  return values[static_cast<std::size_t>(it - colind.begin())] == v;
}

/// Mirror verification over rows [begin, end): every upper-triangle entry of
/// the source must have a bit-equal stored lower mirror. Returns false on
/// the first violation (the caller throws outside any parallel region).
bool verify_mirrors(const CsrMatrix& a, const SymCsrMatrix& out, std::size_t begin,
                    std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    const auto row = static_cast<index_t>(i);
    const auto cols = a.row_cols(row);
    const auto vals = a.row_vals(row);
    for (std::size_t j = 0; j < cols.size(); ++j) {
      if (cols[j] <= row) continue;
      if (!lower_mirror_matches(out.rowptr(), out.colind(), out.values(), cols[j], row,
                                vals[j])) {
        return false;
      }
    }
  }
  return true;
}

[[noreturn]] void fail_mirror() {
  throw check::ValidationError{
      "symcsr.source.mirror",
      "source matrix is not symmetric: an upper-triangle entry has no bit-equal lower "
      "mirror"};
}

}  // namespace

SymCsrMatrix SymCsrMatrix::build(const CsrMatrix& a, int threads) {
  const int nthreads = build::resolve_threads(threads);
  if (a.nrows() != a.ncols()) {
    throw check::ValidationError{"symcsr.source.square",
                                 "symmetric storage requires a square matrix"};
  }
  build::PhaseRecorder rec{"symcsr"};
  SymCsrMatrix out;
  out.nrows_ = a.nrows();
  out.source_nnz_ = a.nnz();

  // Count pass: rows classify their entries independently (strict lower /
  // diagonal / strict upper); fixed row chunks tally each kind. Chunking
  // never leaks into the output — the scan turns tallies into offsets.
  rec.phase("count");
  const auto n = static_cast<std::size_t>(a.nrows());
  const int nchunks = nthreads;
  std::vector<ChunkTally> tally(static_cast<std::size_t>(nchunks));
#pragma omp parallel for default(none) shared(tally, a, n, nchunks) num_threads(nthreads) \
    schedule(static)
  for (int cidx = 0; cidx < nchunks; ++cidx) {
    ChunkTally t;
    const auto begin = build::chunk_begin(n, nchunks, cidx);
    const auto end = build::chunk_begin(n, nchunks, cidx + 1);
    for (std::size_t i = begin; i < end; ++i) {
      const auto row = static_cast<index_t>(i);
      for (const index_t c : a.row_cols(row)) {
        if (c < row) {
          ++t.lower_nnz;
        } else if (c > row) {
          ++t.upper_nnz;
        } else {
          ++t.diag_rows;
        }
      }
    }
    tally[static_cast<std::size_t>(cidx)] = t;
  }

  // Scan pass: exclusive prefix over the lower tallies -> per-chunk bases;
  // the upper/lower totals must already balance for a symmetric pattern.
  rec.phase("scan");
  std::vector<offset_t> base(static_cast<std::size_t>(nchunks));
  offset_t lower_total = 0;
  offset_t upper_total = 0;
  index_t diag_total = 0;
  for (int cidx = 0; cidx < nchunks; ++cidx) {
    base[static_cast<std::size_t>(cidx)] = lower_total;
    lower_total += tally[static_cast<std::size_t>(cidx)].lower_nnz;
    upper_total += tally[static_cast<std::size_t>(cidx)].upper_nnz;
    diag_total += tally[static_cast<std::size_t>(cidx)].diag_rows;
  }
  if (upper_total != lower_total) fail_mirror();
  out.diag_entries_ = diag_total;

  // Fill pass: each chunk walks its rows with a running offset seeded from
  // its base, writing every output slot absolutely so the layout is
  // identical to the serial row-order build and every default-init
  // numa_vector page is first-touched by its filling thread.
  rec.phase("fill");
  out.rowptr_ = numa_vector<offset_t>(n + 1);
  out.rowptr_[0] = 0;
  out.colind_ = numa_vector<index_t>(static_cast<std::size_t>(lower_total));
  out.values_ = numa_vector<value_t>(static_cast<std::size_t>(lower_total));
  out.diag_ = numa_vector<value_t>(n);
  out.diag_present_ = numa_vector<std::uint8_t>(n);
#pragma omp parallel for default(none) shared(out, a, base, n, nchunks) \
    num_threads(nthreads) schedule(static)
  for (int cidx = 0; cidx < nchunks; ++cidx) {
    offset_t off = base[static_cast<std::size_t>(cidx)];
    const auto begin = build::chunk_begin(n, nchunks, cidx);
    const auto end = build::chunk_begin(n, nchunks, cidx + 1);
    for (std::size_t i = begin; i < end; ++i) {
      const auto row = static_cast<index_t>(i);
      const auto cols = a.row_cols(row);
      const auto vals = a.row_vals(row);
      value_t d = 0.0;
      std::uint8_t present = 0;
      for (std::size_t j = 0; j < cols.size(); ++j) {
        if (cols[j] < row) {
          out.colind_[static_cast<std::size_t>(off)] = cols[j];
          out.values_[static_cast<std::size_t>(off)] = vals[j];
          ++off;
        } else if (cols[j] == row) {
          d = vals[j];
          present = 1;
        }
      }
      out.diag_[i] = d;
      out.diag_present_[i] = present;
      out.rowptr_[i + 1] = off;
    }
  }

  // Verify pass: balanced strict-triangle counts cannot prove symmetry on
  // their own, so every upper entry is matched against its stored lower
  // mirror. Chunks record a flag; the throw happens outside the region.
  rec.phase("verify");
  std::vector<std::uint8_t> chunk_ok(static_cast<std::size_t>(nchunks), 1);
#pragma omp parallel for default(none) shared(chunk_ok, out, a, n, nchunks) \
    num_threads(nthreads) schedule(static)
  for (int cidx = 0; cidx < nchunks; ++cidx) {
    const auto begin = build::chunk_begin(n, nchunks, cidx);
    const auto end = build::chunk_begin(n, nchunks, cidx + 1);
    chunk_ok[static_cast<std::size_t>(cidx)] = verify_mirrors(a, out, begin, end) ? 1 : 0;
  }
  for (const std::uint8_t ok : chunk_ok) {
    if (ok == 0) fail_mirror();
  }
  rec.finish(out.bytes());
  // Triangle purity, diagonal accounting and mirror-nnz conservation
  // against the source (check/validate.hpp).
  SPARTA_CHECK_STRUCTURE(out, a);
  return out;
}

SymCsrMatrix SymCsrMatrix::build_serial(const CsrMatrix& a) {
  if (a.nrows() != a.ncols()) {
    throw check::ValidationError{"symcsr.source.square",
                                 "symmetric storage requires a square matrix"};
  }
  SymCsrMatrix out;
  out.nrows_ = a.nrows();
  out.source_nnz_ = a.nnz();

  const auto n = static_cast<std::size_t>(a.nrows());
  out.rowptr_ = numa_vector<offset_t>(n + 1);
  out.rowptr_[0] = 0;
  out.diag_ = numa_vector<value_t>(n);
  out.diag_present_ = numa_vector<std::uint8_t>(n);
  offset_t upper_total = 0;
  for (index_t i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    value_t d = 0.0;
    std::uint8_t present = 0;
    for (std::size_t j = 0; j < cols.size(); ++j) {
      if (cols[j] < i) {
        out.colind_.push_back(cols[j]);
        out.values_.push_back(vals[j]);
      } else if (cols[j] > i) {
        ++upper_total;
      } else {
        d = vals[j];
        present = 1;
        ++out.diag_entries_;
      }
    }
    out.diag_[static_cast<std::size_t>(i)] = d;
    out.diag_present_[static_cast<std::size_t>(i)] = present;
    out.rowptr_[static_cast<std::size_t>(i) + 1] = static_cast<offset_t>(out.colind_.size());
  }
  if (upper_total != out.rowptr_.back()) fail_mirror();
  if (!verify_mirrors(a, out, 0, n)) fail_mirror();
  SPARTA_CHECK_STRUCTURE(out, a);
  return out;
}

CsrMatrix SymCsrMatrix::expand() const {
  CooMatrix coo{nrows_, nrows_};
  coo.reserve(static_cast<std::size_t>(source_nnz_));
  for (index_t i = 0; i < nrows_; ++i) {
    const auto cols = row_cols(i);
    const auto vals = row_vals(i);
    for (std::size_t j = 0; j < cols.size(); ++j) {
      coo.add(i, cols[j], vals[j]);
      coo.add(cols[j], i, vals[j]);
    }
    if (diag_present_[static_cast<std::size_t>(i)] != 0) {
      coo.add(i, i, diag_[static_cast<std::size_t>(i)]);
    }
  }
  return CsrMatrix::from_coo(coo);
}

std::span<const index_t> SymCsrMatrix::row_cols(index_t i) const {
  const auto b = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i)]);
  const auto e = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i) + 1]);
  return std::span<const index_t>{colind_}.subspan(b, e - b);
}

std::span<const value_t> SymCsrMatrix::row_vals(index_t i) const {
  const auto b = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i)]);
  const auto e = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i) + 1]);
  return std::span<const value_t>{values_}.subspan(b, e - b);
}

std::size_t SymCsrMatrix::index_bytes() const {
  return rowptr_.size() * sizeof(offset_t) + colind_.size() * sizeof(index_t);
}

std::size_t SymCsrMatrix::value_bytes() const {
  return (values_.size() + diag_.size()) * sizeof(value_t);
}

}  // namespace sparta
