// Long-row matrix decomposition — the paper's IMB-class optimization for
// matrices with highly uneven row lengths (paper Fig. 6/7).
//
// The matrix is split into (a) a "short" part: the original CSR with long
// rows skipped, processed with the usual one-row-per-thread partitioning,
// and (b) a "long" part: the few rows holding a disproportionate share of
// the nonzeros, each processed cooperatively by all threads followed by a
// reduction of partial sums. This removes the serialization of a single
// thread grinding through a 100k-nonzero row.
#pragma once

#include <span>

#include "common/numa.hpp"
#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace sparta {

/// Decomposition of a CSR matrix into short rows + long rows.
class DecomposedCsrMatrix {
 public:
  /// Split `csr` using `threshold` (rows with nnz > threshold are "long").
  /// A non-positive threshold selects the default policy:
  /// threshold = max(kMinLongRow, 8 * average row nnz). The split is a
  /// parallel two-pass builder (chunked count -> prefix sum -> exact fill);
  /// `threads` = 0 means omp_get_max_threads() and the output is
  /// bit-identical to decompose_serial for every thread count.
  static DecomposedCsrMatrix decompose(const CsrMatrix& csr, index_t threshold = 0,
                                       int threads = 0);

  /// Single-threaded reference builder (the pre-pipeline implementation);
  /// kept as the bit-identity oracle for tests and the preprocessing bench.
  static DecomposedCsrMatrix decompose_serial(const CsrMatrix& csr, index_t threshold = 0);

  /// Default long-row floor: rows shorter than this are never "long".
  static constexpr index_t kMinLongRow = 1024;

  /// Compute the default threshold for a matrix.
  static index_t default_threshold(const CsrMatrix& csr);

  [[nodiscard]] index_t nrows() const { return short_part_.nrows(); }
  [[nodiscard]] index_t ncols() const { return short_part_.ncols(); }
  /// Total nonzeros (short + long parts).
  [[nodiscard]] offset_t nnz() const;

  /// CSR of the matrix with the long rows emptied.
  [[nodiscard]] const CsrMatrix& short_part() const { return short_part_; }
  /// Row indices of the long rows (ascending).
  [[nodiscard]] std::span<const index_t> long_rows() const { return long_rows_; }
  /// CSR-style storage of the long rows only: long_rowptr has
  /// long_rows().size()+1 entries indexing long_colind/long_values.
  [[nodiscard]] std::span<const offset_t> long_rowptr() const { return long_rowptr_; }
  [[nodiscard]] std::span<const index_t> long_colind() const { return long_colind_; }
  [[nodiscard]] std::span<const value_t> long_values() const { return long_values_; }

  [[nodiscard]] index_t threshold() const { return threshold_; }

  /// Reassemble the original matrix (round-trip tested).
  [[nodiscard]] CsrMatrix recompose() const;

  /// Total bytes of all parts.
  [[nodiscard]] std::size_t bytes() const;

 private:
  DecomposedCsrMatrix() = default;

  index_t threshold_ = 0;
  CsrMatrix short_part_;
  numa_vector<index_t> long_rows_;
  numa_vector<offset_t> long_rowptr_{0};
  numa_vector<index_t> long_colind_;
  numa_vector<value_t> long_values_;
};

}  // namespace sparta
