#include "sparse/sell.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "check/contract.hpp"
#include "check/validate.hpp"
#include "sparse/build.hpp"

namespace sparta {

namespace {

/// Shared parameter validation + sigma rounding for both builders.
index_t checked_sigma(index_t chunk, index_t sigma) {
  if (chunk <= 0) throw std::invalid_argument{"sell: chunk must be positive"};
  if (sigma <= 0) throw std::invalid_argument{"sell: sigma must be positive"};
  // Round sigma up to a multiple of the chunk so windows align with chunks.
  return (sigma + chunk - 1) / chunk * chunk;
}

}  // namespace

SellMatrix SellMatrix::from_csr(const CsrMatrix& m, index_t chunk, index_t sigma,
                                int threads) {
  sigma = checked_sigma(chunk, sigma);
  const int nthreads = build::resolve_threads(threads);
  build::PhaseRecorder rec{"sell"};

  SellMatrix s;
  s.nrows_ = m.nrows();
  s.ncols_ = m.ncols();
  s.chunk_ = chunk;
  s.sigma_ = sigma;
  s.nnz_ = m.nnz();

  // Permute pass: each sigma-window is sorted independently, so windows
  // parallelize without changing the (stable, deterministic) result.
  rec.phase("permute");
  const auto n = static_cast<std::size_t>(m.nrows());
  const auto nwindows =
      static_cast<std::ptrdiff_t>((n + static_cast<std::size_t>(sigma) - 1) /
                                  static_cast<std::size_t>(sigma));
  s.perm_ = numa_vector<index_t>(n);
  s.row_len_ = numa_vector<index_t>(n);
#pragma omp parallel for default(none) shared(s, m, n, nwindows, sigma) \
    num_threads(nthreads) schedule(static)
  for (std::ptrdiff_t w = 0; w < nwindows; ++w) {
    const auto begin = static_cast<std::size_t>(w) * static_cast<std::size_t>(sigma);
    const auto end = std::min(n, begin + static_cast<std::size_t>(sigma));
    std::iota(s.perm_.begin() + static_cast<std::ptrdiff_t>(begin),
              s.perm_.begin() + static_cast<std::ptrdiff_t>(end),
              static_cast<index_t>(begin));
    std::stable_sort(s.perm_.begin() + static_cast<std::ptrdiff_t>(begin),
                     s.perm_.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](index_t a, index_t b) { return m.row_nnz(a) > m.row_nnz(b); });
    for (std::size_t p = begin; p < end; ++p) s.row_len_[p] = m.row_nnz(s.perm_[p]);
  }

  // Count pass: per-chunk padded widths in parallel, then a serial prefix
  // sum over the (nrows/chunk) chunk offsets.
  rec.phase("count");
  const auto nchunks = static_cast<std::size_t>((m.nrows() + chunk - 1) / chunk);
  const auto nchunks_s = static_cast<std::ptrdiff_t>(nchunks);
  s.chunk_len_ = numa_vector<index_t>(nchunks);
  s.chunk_off_ = numa_vector<offset_t>(nchunks);
#pragma omp parallel for default(none) shared(s, n, nchunks_s, chunk) num_threads(nthreads) \
    schedule(static)
  for (std::ptrdiff_t k = 0; k < nchunks_s; ++k) {
    index_t width = 0;
    for (index_t lane = 0; lane < chunk; ++lane) {
      const auto p = static_cast<std::size_t>(k) * static_cast<std::size_t>(chunk) +
                     static_cast<std::size_t>(lane);
      if (p < n) width = std::max(width, s.row_len_[p]);
    }
    s.chunk_len_[static_cast<std::size_t>(k)] = width;
  }
  offset_t off = 0;
  for (std::size_t k = 0; k < nchunks; ++k) {
    s.chunk_off_[k] = off;
    off += static_cast<offset_t>(s.chunk_len_[k]) * chunk;
  }

  // Fill pass: chunks are disjoint slices of colind/values. Each chunk slice
  // is zeroed contiguously (the padding bytes, and the first touch of the
  // default-init storage), then the real elements scatter over it — the same
  // prefill-then-scatter order as the serial builder, bit for bit.
  rec.phase("fill");
  s.colind_ = numa_vector<index_t>(static_cast<std::size_t>(off));
  s.values_ = numa_vector<value_t>(static_cast<std::size_t>(off));
#pragma omp parallel for default(none) shared(s, m, n, nchunks_s, chunk) \
    num_threads(nthreads) schedule(static)
  for (std::ptrdiff_t k = 0; k < nchunks_s; ++k) {
    const auto base = static_cast<std::size_t>(s.chunk_off_[static_cast<std::size_t>(k)]);
    const auto width = static_cast<std::size_t>(s.chunk_len_[static_cast<std::size_t>(k)]);
    const auto slice = width * static_cast<std::size_t>(chunk);
    std::fill_n(s.colind_.begin() + static_cast<std::ptrdiff_t>(base), slice, index_t{0});
    std::fill_n(s.values_.begin() + static_cast<std::ptrdiff_t>(base), slice, value_t{0});
    for (index_t lane = 0; lane < chunk; ++lane) {
      const auto p = static_cast<std::size_t>(k) * static_cast<std::size_t>(chunk) +
                     static_cast<std::size_t>(lane);
      if (p >= n) continue;
      const auto cols = m.row_cols(s.perm_[p]);
      const auto vals = m.row_vals(s.perm_[p]);
      for (std::size_t j = 0; j < cols.size(); ++j) {
        const auto dst = base + j * static_cast<std::size_t>(chunk) +
                         static_cast<std::size_t>(lane);
        s.colind_[dst] = cols[j];
        s.values_[dst] = vals[j];
      }
    }
  }
  rec.finish(s.bytes());
  SPARTA_CHECK_STRUCTURE(s);
  return s;
}

SellMatrix SellMatrix::from_csr_serial(const CsrMatrix& m, index_t chunk, index_t sigma) {
  sigma = checked_sigma(chunk, sigma);

  SellMatrix s;
  s.nrows_ = m.nrows();
  s.ncols_ = m.ncols();
  s.chunk_ = chunk;
  s.sigma_ = sigma;
  s.nnz_ = m.nnz();

  const auto n = static_cast<std::size_t>(m.nrows());
  s.perm_.resize(n);
  std::iota(s.perm_.begin(), s.perm_.end(), 0);
  // Sort rows by descending length within each sigma-window (stable, so
  // equal-length rows keep their original order — deterministic layout).
  for (std::size_t w = 0; w < n; w += static_cast<std::size_t>(sigma)) {
    const auto end = std::min(n, w + static_cast<std::size_t>(sigma));
    std::stable_sort(s.perm_.begin() + static_cast<std::ptrdiff_t>(w),
                     s.perm_.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](index_t a, index_t b) { return m.row_nnz(a) > m.row_nnz(b); });
  }

  s.row_len_.resize(n);
  for (std::size_t p = 0; p < n; ++p) s.row_len_[p] = m.row_nnz(s.perm_[p]);

  const auto nchunks = static_cast<std::size_t>((m.nrows() + chunk - 1) / chunk);
  s.chunk_len_.resize(nchunks);
  s.chunk_off_.resize(nchunks);
  offset_t off = 0;
  for (std::size_t k = 0; k < nchunks; ++k) {
    index_t width = 0;
    for (index_t lane = 0; lane < chunk; ++lane) {
      const auto p = static_cast<std::size_t>(k) * static_cast<std::size_t>(chunk) +
                     static_cast<std::size_t>(lane);
      if (p < n) width = std::max(width, s.row_len_[p]);
    }
    s.chunk_len_[k] = width;
    s.chunk_off_[k] = off;
    off += static_cast<offset_t>(width) * chunk;
  }

  s.colind_.assign(static_cast<std::size_t>(off), 0);
  s.values_.assign(static_cast<std::size_t>(off), 0.0);
  for (std::size_t k = 0; k < nchunks; ++k) {
    for (index_t lane = 0; lane < chunk; ++lane) {
      const auto p = static_cast<std::size_t>(k) * static_cast<std::size_t>(chunk) +
                     static_cast<std::size_t>(lane);
      if (p >= n) continue;
      const index_t row = s.perm_[p];
      const auto cols = m.row_cols(row);
      const auto vals = m.row_vals(row);
      for (std::size_t j = 0; j < cols.size(); ++j) {
        // Column-major within the chunk: element j of lane `lane` lives at
        // chunk_off + j*chunk + lane.
        const auto dst = static_cast<std::size_t>(s.chunk_off_[k]) +
                         j * static_cast<std::size_t>(chunk) + static_cast<std::size_t>(lane);
        s.colind_[dst] = cols[j];
        s.values_[dst] = vals[j];
      }
    }
  }
  SPARTA_CHECK_STRUCTURE(s);
  return s;
}

std::size_t SellMatrix::index_bytes() const {
  return colind_.size() * sizeof(index_t) + perm_.size() * sizeof(index_t) +
         row_len_.size() * sizeof(index_t) + chunk_len_.size() * sizeof(index_t) +
         chunk_off_.size() * sizeof(offset_t);
}

CsrMatrix SellMatrix::to_csr() const {
  CooMatrix coo{nrows_, ncols_};
  coo.reserve(static_cast<std::size_t>(nnz_));
  for (index_t k = 0; k < nchunks(); ++k) {
    for (index_t lane = 0; lane < chunk_; ++lane) {
      const index_t p = k * chunk_ + lane;
      if (p >= nrows_) continue;
      const index_t row = perm_[static_cast<std::size_t>(p)];
      const index_t len = row_len_[static_cast<std::size_t>(p)];
      for (index_t j = 0; j < len; ++j) {
        const auto src = static_cast<std::size_t>(chunk_off_[static_cast<std::size_t>(k)]) +
                         static_cast<std::size_t>(j) * static_cast<std::size_t>(chunk_) +
                         static_cast<std::size_t>(lane);
        coo.add(row, colind_[src], values_[src]);
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

void spmv_sell_reference(const SellMatrix& a, std::span<const value_t> x,
                         std::span<value_t> y) {
  if (x.size() != static_cast<std::size_t>(a.ncols()) ||
      y.size() != static_cast<std::size_t>(a.nrows())) {
    throw std::invalid_argument{"spmv_sell_reference: vector size mismatch"};
  }
  const auto colind = a.colind();
  const auto values = a.values();
  const index_t chunk = a.chunk_rows();
  for (index_t k = 0; k < a.nchunks(); ++k) {
    for (index_t lane = 0; lane < chunk; ++lane) {
      const index_t p = k * chunk + lane;
      if (p >= a.nrows()) continue;
      value_t acc = 0.0;
      const index_t len = a.row_len(p);
      for (index_t j = 0; j < len; ++j) {
        const auto src = static_cast<std::size_t>(a.chunk_offset(k)) +
                         static_cast<std::size_t>(j) * static_cast<std::size_t>(chunk) +
                         static_cast<std::size_t>(lane);
        acc += values[src] * x[static_cast<std::size_t>(colind[src])];
      }
      y[static_cast<std::size_t>(a.row_of(p))] = acc;
    }
  }
}

}  // namespace sparta
