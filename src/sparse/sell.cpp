#include "sparse/sell.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "check/contract.hpp"
#include "check/validate.hpp"

namespace sparta {

SellMatrix SellMatrix::from_csr(const CsrMatrix& m, index_t chunk, index_t sigma) {
  if (chunk <= 0) throw std::invalid_argument{"sell: chunk must be positive"};
  if (sigma <= 0) throw std::invalid_argument{"sell: sigma must be positive"};
  // Round sigma up to a multiple of the chunk so windows align with chunks.
  sigma = (sigma + chunk - 1) / chunk * chunk;

  SellMatrix s;
  s.nrows_ = m.nrows();
  s.ncols_ = m.ncols();
  s.chunk_ = chunk;
  s.sigma_ = sigma;
  s.nnz_ = m.nnz();

  const auto n = static_cast<std::size_t>(m.nrows());
  s.perm_.resize(n);
  std::iota(s.perm_.begin(), s.perm_.end(), 0);
  // Sort rows by descending length within each sigma-window (stable, so
  // equal-length rows keep their original order — deterministic layout).
  for (std::size_t w = 0; w < n; w += static_cast<std::size_t>(sigma)) {
    const auto end = std::min(n, w + static_cast<std::size_t>(sigma));
    std::stable_sort(s.perm_.begin() + static_cast<std::ptrdiff_t>(w),
                     s.perm_.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](index_t a, index_t b) { return m.row_nnz(a) > m.row_nnz(b); });
  }

  s.row_len_.resize(n);
  for (std::size_t p = 0; p < n; ++p) s.row_len_[p] = m.row_nnz(s.perm_[p]);

  const auto nchunks = static_cast<std::size_t>((m.nrows() + chunk - 1) / chunk);
  s.chunk_len_.resize(nchunks);
  s.chunk_off_.resize(nchunks);
  offset_t off = 0;
  for (std::size_t k = 0; k < nchunks; ++k) {
    index_t width = 0;
    for (index_t lane = 0; lane < chunk; ++lane) {
      const auto p = static_cast<std::size_t>(k) * static_cast<std::size_t>(chunk) +
                     static_cast<std::size_t>(lane);
      if (p < n) width = std::max(width, s.row_len_[p]);
    }
    s.chunk_len_[k] = width;
    s.chunk_off_[k] = off;
    off += static_cast<offset_t>(width) * chunk;
  }

  s.colind_.assign(static_cast<std::size_t>(off), 0);
  s.values_.assign(static_cast<std::size_t>(off), 0.0);
  for (std::size_t k = 0; k < nchunks; ++k) {
    for (index_t lane = 0; lane < chunk; ++lane) {
      const auto p = static_cast<std::size_t>(k) * static_cast<std::size_t>(chunk) +
                     static_cast<std::size_t>(lane);
      if (p >= n) continue;
      const index_t row = s.perm_[p];
      const auto cols = m.row_cols(row);
      const auto vals = m.row_vals(row);
      for (std::size_t j = 0; j < cols.size(); ++j) {
        // Column-major within the chunk: element j of lane `lane` lives at
        // chunk_off + j*chunk + lane.
        const auto dst = static_cast<std::size_t>(s.chunk_off_[k]) +
                         j * static_cast<std::size_t>(chunk) + static_cast<std::size_t>(lane);
        s.colind_[dst] = cols[j];
        s.values_[dst] = vals[j];
      }
    }
  }
  SPARTA_CHECK_STRUCTURE(s);
  return s;
}

std::size_t SellMatrix::index_bytes() const {
  return colind_.size() * sizeof(index_t) + perm_.size() * sizeof(index_t) +
         row_len_.size() * sizeof(index_t) + chunk_len_.size() * sizeof(index_t) +
         chunk_off_.size() * sizeof(offset_t);
}

CsrMatrix SellMatrix::to_csr() const {
  CooMatrix coo{nrows_, ncols_};
  coo.reserve(static_cast<std::size_t>(nnz_));
  for (index_t k = 0; k < nchunks(); ++k) {
    for (index_t lane = 0; lane < chunk_; ++lane) {
      const index_t p = k * chunk_ + lane;
      if (p >= nrows_) continue;
      const index_t row = perm_[static_cast<std::size_t>(p)];
      const index_t len = row_len_[static_cast<std::size_t>(p)];
      for (index_t j = 0; j < len; ++j) {
        const auto src = static_cast<std::size_t>(chunk_off_[static_cast<std::size_t>(k)]) +
                         static_cast<std::size_t>(j) * static_cast<std::size_t>(chunk_) +
                         static_cast<std::size_t>(lane);
        coo.add(row, colind_[src], values_[src]);
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

void spmv_sell_reference(const SellMatrix& a, std::span<const value_t> x,
                         std::span<value_t> y) {
  if (x.size() != static_cast<std::size_t>(a.ncols()) ||
      y.size() != static_cast<std::size_t>(a.nrows())) {
    throw std::invalid_argument{"spmv_sell_reference: vector size mismatch"};
  }
  const auto colind = a.colind();
  const auto values = a.values();
  const index_t chunk = a.chunk_rows();
  for (index_t k = 0; k < a.nchunks(); ++k) {
    for (index_t lane = 0; lane < chunk; ++lane) {
      const index_t p = k * chunk + lane;
      if (p >= a.nrows()) continue;
      value_t acc = 0.0;
      const index_t len = a.row_len(p);
      for (index_t j = 0; j < len; ++j) {
        const auto src = static_cast<std::size_t>(a.chunk_offset(k)) +
                         static_cast<std::size_t>(j) * static_cast<std::size_t>(chunk) +
                         static_cast<std::size_t>(lane);
        acc += values[src] * x[static_cast<std::size_t>(colind[src])];
      }
      y[static_cast<std::size_t>(a.row_of(p))] = acc;
    }
  }
}

}  // namespace sparta
