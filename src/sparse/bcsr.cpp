#include "sparse/bcsr.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "check/contract.hpp"
#include "check/validate.hpp"
#include "sparse/build.hpp"

namespace sparta {

BcsrMatrix BcsrMatrix::from_csr(const CsrMatrix& m, index_t r, index_t c, int threads) {
  if (r <= 0 || c <= 0) throw std::invalid_argument{"bcsr: block dims must be positive"};
  const int nthreads = build::resolve_threads(threads);
  build::PhaseRecorder rec{"bcsr"};
  BcsrMatrix b;
  b.nrows_ = m.nrows();
  b.ncols_ = m.ncols();
  b.r_ = r;
  b.c_ = c;
  b.nnz_ = m.nnz();

  const index_t nblock_rows = (m.nrows() + r - 1) / r;
  const index_t nblock_cols = (m.ncols() + c - 1) / c;
  const auto nbr = static_cast<std::ptrdiff_t>(nblock_rows);

  // Count pass: block-rows are independent; a per-thread stamp array
  // (stamp[bc] == br marks block column bc as seen for block-row br — the
  // epoch trick, no clearing between block-rows) counts distinct blocks.
  rec.phase("count");
  b.block_rowptr_ = numa_vector<offset_t>(static_cast<std::size_t>(nblock_rows) + 1);
  b.block_rowptr_[0] = 0;
#pragma omp parallel default(none) shared(b, m, r, c, nbr, nblock_cols) num_threads(nthreads)
  {
    aligned_vector<index_t> stamp(static_cast<std::size_t>(nblock_cols), -1);
#pragma omp for schedule(static)
    for (std::ptrdiff_t br = 0; br < nbr; ++br) {
      const auto brow = static_cast<index_t>(br);
      const index_t row_end = std::min<index_t>(m.nrows(), (brow + 1) * r);
      offset_t count = 0;
      for (index_t i = brow * r; i < row_end; ++i) {
        for (index_t col : m.row_cols(i)) {
          const auto bc = static_cast<std::size_t>(col / c);
          if (stamp[bc] != brow) {
            stamp[bc] = brow;
            ++count;
          }
        }
      }
      b.block_rowptr_[static_cast<std::size_t>(br) + 1] = count;
    }
  }

  rec.phase("scan");
  for (std::size_t i = 0; i < static_cast<std::size_t>(nblock_rows); ++i) {
    b.block_rowptr_[i + 1] += b.block_rowptr_[i];
  }

  // Fill pass: each block-row owns a disjoint slice of block_colind/values.
  // Distinct block columns are re-discovered into a per-thread scratch list
  // (reserved up front — no reallocation inside the loop), sorted ascending
  // to match the serial builder's std::map ordering, payloads zeroed, then
  // values scattered. Every output slot is written, so the default-init
  // numa_vector storage is fully first-touched by its filling thread.
  rec.phase("fill");
  const auto nblocks = static_cast<std::size_t>(b.block_rowptr_[static_cast<std::size_t>(nblock_rows)]);
  const auto payload = static_cast<std::size_t>(r) * static_cast<std::size_t>(c);
  b.block_colind_ = numa_vector<index_t>(nblocks);
  b.values_ = numa_vector<value_t>(nblocks * payload);
#pragma omp parallel default(none) \
    shared(b, m, r, c, nbr, nblock_cols, payload) num_threads(nthreads)
  {
    aligned_vector<index_t> stamp(static_cast<std::size_t>(nblock_cols), -1);
    aligned_vector<offset_t> slot(static_cast<std::size_t>(nblock_cols), 0);
    aligned_vector<index_t> bcs;
    bcs.reserve(static_cast<std::size_t>(nblock_cols));
#pragma omp for schedule(static)
    for (std::ptrdiff_t br = 0; br < nbr; ++br) {
      const auto brow = static_cast<index_t>(br);
      const index_t row_end = std::min<index_t>(m.nrows(), (brow + 1) * r);
      bcs.clear();
      for (index_t i = brow * r; i < row_end; ++i) {
        for (index_t col : m.row_cols(i)) {
          const index_t bc = col / c;
          if (stamp[static_cast<std::size_t>(bc)] != brow) {
            stamp[static_cast<std::size_t>(bc)] = brow;
            bcs.push_back(bc);
          }
        }
      }
      std::sort(bcs.begin(), bcs.end());
      const auto base = static_cast<std::size_t>(b.block_rowptr_[static_cast<std::size_t>(br)]);
      for (std::size_t idx = 0; idx < bcs.size(); ++idx) {
        const index_t bc = bcs[idx];
        b.block_colind_[base + idx] = bc;
        slot[static_cast<std::size_t>(bc)] = static_cast<offset_t>(base + idx);
        std::fill_n(b.values_.begin() + static_cast<std::ptrdiff_t>((base + idx) * payload),
                    static_cast<std::ptrdiff_t>(payload), 0.0);
      }
      for (index_t i = brow * r; i < row_end; ++i) {
        const auto cols = m.row_cols(i);
        const auto vals = m.row_vals(i);
        for (std::size_t j = 0; j < cols.size(); ++j) {
          const index_t bc = cols[j] / c;
          const auto local =
              static_cast<std::size_t>(i - brow * r) * static_cast<std::size_t>(c) +
              static_cast<std::size_t>(cols[j] - bc * c);
          b.values_[static_cast<std::size_t>(slot[static_cast<std::size_t>(bc)]) * payload +
                    local] = vals[j];
        }
      }
    }
  }
  rec.finish(b.bytes());
  SPARTA_CHECK_STRUCTURE(b);
  return b;
}

BcsrMatrix BcsrMatrix::from_csr_serial(const CsrMatrix& m, index_t r, index_t c) {
  if (r <= 0 || c <= 0) throw std::invalid_argument{"bcsr: block dims must be positive"};
  BcsrMatrix b;
  b.nrows_ = m.nrows();
  b.ncols_ = m.ncols();
  b.r_ = r;
  b.c_ = c;
  b.nnz_ = m.nnz();

  const index_t nblock_rows = (m.nrows() + r - 1) / r;
  b.block_rowptr_.assign(static_cast<std::size_t>(nblock_rows) + 1, 0);

  // Per block-row: gather the dense blocks keyed by block column. The map
  // keeps block columns sorted, matching CSR's column ordering invariant.
  std::map<index_t, aligned_vector<value_t>> blocks;
  for (index_t br = 0; br < nblock_rows; ++br) {
    blocks.clear();
    const index_t row_end = std::min<index_t>(m.nrows(), (br + 1) * r);
    for (index_t i = br * r; i < row_end; ++i) {
      const auto cols = m.row_cols(i);
      const auto vals = m.row_vals(i);
      for (std::size_t j = 0; j < cols.size(); ++j) {
        const index_t bc = cols[j] / c;
        auto [it, inserted] = blocks.try_emplace(
            bc, aligned_vector<value_t>(static_cast<std::size_t>(r) * c, 0.0));
        const auto local =
            static_cast<std::size_t>(i - br * r) * static_cast<std::size_t>(c) +
            static_cast<std::size_t>(cols[j] - bc * c);
        it->second[local] = vals[j];
      }
    }
    for (auto& [bc, payload] : blocks) {
      b.block_colind_.push_back(bc);
      b.values_.insert(b.values_.end(), payload.begin(), payload.end());
    }
    b.block_rowptr_[static_cast<std::size_t>(br) + 1] =
        static_cast<offset_t>(b.block_colind_.size());
  }
  SPARTA_CHECK_STRUCTURE(b);
  return b;
}

CsrMatrix BcsrMatrix::to_csr() const {
  CooMatrix coo{nrows_, ncols_};
  coo.reserve(static_cast<std::size_t>(nnz_));
  const index_t nblock_rows = (nrows_ + r_ - 1) / r_;
  for (index_t br = 0; br < nblock_rows; ++br) {
    for (offset_t k = block_rowptr_[static_cast<std::size_t>(br)];
         k < block_rowptr_[static_cast<std::size_t>(br) + 1]; ++k) {
      const index_t bc = block_colind_[static_cast<std::size_t>(k)];
      const auto base = static_cast<std::size_t>(k) * static_cast<std::size_t>(r_) *
                        static_cast<std::size_t>(c_);
      for (index_t i = 0; i < r_; ++i) {
        const index_t row = br * r_ + i;
        if (row >= nrows_) break;
        for (index_t j = 0; j < c_; ++j) {
          const index_t col = bc * c_ + j;
          if (col >= ncols_) break;
          const value_t v =
              values_[base + static_cast<std::size_t>(i) * static_cast<std::size_t>(c_) +
                      static_cast<std::size_t>(j)];
          // Padding zeros are dropped; structural zeros of the source were
          // already dropped by its own construction.
          if (v != 0.0) coo.add(row, col, v);
        }
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

void spmv_bcsr_reference(const BcsrMatrix& a, std::span<const value_t> x,
                         std::span<value_t> y) {
  if (x.size() != static_cast<std::size_t>(a.ncols()) ||
      y.size() != static_cast<std::size_t>(a.nrows())) {
    throw std::invalid_argument{"spmv_bcsr_reference: vector size mismatch"};
  }
  std::fill(y.begin(), y.end(), 0.0);
  const index_t r = a.block_rows();
  const index_t c = a.block_cols();
  const auto rowptr = a.block_rowptr();
  const auto colind = a.block_colind();
  const auto values = a.values();
  const index_t nblock_rows = (a.nrows() + r - 1) / r;
  for (index_t br = 0; br < nblock_rows; ++br) {
    for (offset_t k = rowptr[static_cast<std::size_t>(br)];
         k < rowptr[static_cast<std::size_t>(br) + 1]; ++k) {
      const index_t col_base = colind[static_cast<std::size_t>(k)] * c;
      const auto base = static_cast<std::size_t>(k) * static_cast<std::size_t>(r) *
                        static_cast<std::size_t>(c);
      for (index_t i = 0; i < r; ++i) {
        const index_t row = br * r + i;
        if (row >= a.nrows()) break;
        value_t acc = 0.0;
        for (index_t j = 0; j < c; ++j) {
          const index_t col = col_base + j;
          if (col >= a.ncols()) break;
          acc += values[base + static_cast<std::size_t>(i) * static_cast<std::size_t>(c) +
                        static_cast<std::size_t>(j)] *
                 x[static_cast<std::size_t>(col)];
        }
        y[static_cast<std::size_t>(row)] += acc;
      }
    }
  }
}

}  // namespace sparta
