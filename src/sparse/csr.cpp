#include "sparse/csr.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "check/validate.hpp"
#include "sparse/build.hpp"

namespace sparta {

CsrMatrix::CsrMatrix(index_t nrows, index_t ncols, numa_vector<offset_t> rowptr,
                     numa_vector<index_t> colind, numa_vector<value_t> values)
    : nrows_(nrows),
      ncols_(ncols),
      rowptr_(std::move(rowptr)),
      colind_(std::move(colind)),
      values_(std::move(values)) {
  validate();
}

CsrMatrix CsrMatrix::from_coo(const CooMatrix& coo, int threads) {
  const int nthreads = build::resolve_threads(threads);
  const CooMatrix* src = &coo;
  CooMatrix tmp{0, 0};
  if (!coo.is_compressed()) {
    tmp = coo;
    tmp.compress();
    src = &tmp;
  }
  build::PhaseRecorder rec{"csr"};
  const auto n = static_cast<std::ptrdiff_t>(src->nrows());
  const std::vector<Triplet>& entries = src->entries();
  const auto nnz = static_cast<std::ptrdiff_t>(entries.size());

  // Count pass. The entries are sorted by (row, col), so each rowptr entry
  // is independent: rowptr[i] = index of the first entry with row >= i —
  // exactly the value the serial count-then-prefix-sum scan produces.
  rec.phase("count");
  numa_vector<offset_t> rowptr(static_cast<std::size_t>(n) + 1);
  rowptr[0] = 0;
#pragma omp parallel for default(none) shared(rowptr, entries, n) num_threads(nthreads) \
    schedule(static)
  for (std::ptrdiff_t i = 1; i <= n; ++i) {
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), static_cast<index_t>(i),
        [](const Triplet& t, index_t row) { return t.row < row; });
    rowptr[static_cast<std::size_t>(i)] = static_cast<offset_t>(it - entries.begin());
  }

  // Fill pass: element-wise copy, first-touching colind/values in row order.
  rec.phase("fill");
  numa_vector<index_t> colind(static_cast<std::size_t>(nnz));
  numa_vector<value_t> values(static_cast<std::size_t>(nnz));
#pragma omp parallel for default(none) shared(colind, values, entries, nnz) \
    num_threads(nthreads) schedule(static)
  for (std::ptrdiff_t j = 0; j < nnz; ++j) {
    const auto k = static_cast<std::size_t>(j);
    colind[k] = entries[k].col;
    values[k] = entries[k].value;
  }
  rec.finish(rowptr.size() * sizeof(offset_t) + colind.size() * sizeof(index_t) +
             values.size() * sizeof(value_t));
  return CsrMatrix{src->nrows(), src->ncols(), std::move(rowptr), std::move(colind),
                   std::move(values)};
}

std::span<const index_t> CsrMatrix::row_cols(index_t i) const {
  const auto b = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i)]);
  const auto e = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i) + 1]);
  return std::span<const index_t>{colind_}.subspan(b, e - b);
}

std::span<const value_t> CsrMatrix::row_vals(index_t i) const {
  const auto b = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i)]);
  const auto e = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i) + 1]);
  return std::span<const value_t>{values_}.subspan(b, e - b);
}

std::size_t CsrMatrix::index_bytes() const {
  return rowptr_.size() * sizeof(offset_t) + colind_.size() * sizeof(index_t);
}

std::size_t CsrMatrix::value_bytes() const { return values_.size() * sizeof(value_t); }

std::size_t CsrMatrix::spmv_working_set_bytes() const {
  return bytes() + (static_cast<std::size_t>(ncols_) + static_cast<std::size_t>(nrows_)) *
                       sizeof(value_t);
}

void CsrMatrix::validate() const {
  // Full structural check, unconditionally (the historical contract of this
  // entry point — callers rely on malformed arrays throwing in any build).
  // The check-level machinery gates only the *wired* validations of the
  // derived formats; see src/check/.
  check::validate_csr({nrows_, ncols_, rowptr_, colind_, values_.size()},
                      check::Level::kFull);
}

CsrMatrix CsrMatrix::transpose() const {
  const auto n = static_cast<std::size_t>(ncols_);
  numa_vector<offset_t> rowptr(n + 1, 0);
  for (index_t c : colind_) ++rowptr[static_cast<std::size_t>(c) + 1];
  for (std::size_t i = 0; i < n; ++i) rowptr[i + 1] += rowptr[i];
  // The scatter writes every destination slot exactly once (cursor walks
  // each target row left to right), so default-init storage is safe.
  numa_vector<index_t> colind(colind_.size());
  numa_vector<value_t> values(values_.size());
  aligned_vector<offset_t> cursor(rowptr.begin(), rowptr.end() - 1);
  for (index_t r = 0; r < nrows_; ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_vals(r);
    for (std::size_t j = 0; j < cols.size(); ++j) {
      const auto dst = static_cast<std::size_t>(cursor[static_cast<std::size_t>(cols[j])]++);
      colind[dst] = r;
      values[dst] = vals[j];
    }
  }
  return CsrMatrix{ncols_, nrows_, std::move(rowptr), std::move(colind), std::move(values)};
}

CsrMatrix CsrMatrix::slice_rows(index_t begin, index_t end) const {
  if (begin < 0 || end < begin || end > nrows_) {
    throw std::out_of_range{"csr: slice_rows range invalid"};
  }
  const auto b = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(begin)]);
  const auto e = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(end)]);
  numa_vector<offset_t> rowptr(static_cast<std::size_t>(end - begin) + 1);
  for (index_t i = begin; i <= end; ++i) {
    rowptr[static_cast<std::size_t>(i - begin)] =
        rowptr_[static_cast<std::size_t>(i)] - static_cast<offset_t>(b);
  }
  numa_vector<index_t> colind(colind_.begin() + static_cast<std::ptrdiff_t>(b),
                              colind_.begin() + static_cast<std::ptrdiff_t>(e));
  numa_vector<value_t> values(values_.begin() + static_cast<std::ptrdiff_t>(b),
                              values_.begin() + static_cast<std::ptrdiff_t>(e));
  return CsrMatrix{end - begin, ncols_, std::move(rowptr), std::move(colind),
                   std::move(values)};
}

void spmv_reference(const CsrMatrix& a, std::span<const value_t> x, std::span<value_t> y) {
  if (x.size() != static_cast<std::size_t>(a.ncols()) ||
      y.size() != static_cast<std::size_t>(a.nrows())) {
    throw std::invalid_argument{"spmv_reference: vector size mismatch"};
  }
  const auto rowptr = a.rowptr();
  const auto colind = a.colind();
  const auto values = a.values();
  for (index_t i = 0; i < a.nrows(); ++i) {
    value_t acc = 0.0;
    for (offset_t j = rowptr[static_cast<std::size_t>(i)];
         j < rowptr[static_cast<std::size_t>(i) + 1]; ++j) {
      acc += values[static_cast<std::size_t>(j)] *
             x[static_cast<std::size_t>(colind[static_cast<std::size_t>(j)])];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
}

}  // namespace sparta
