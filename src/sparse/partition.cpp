#include "sparse/partition.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/contract.hpp"
#include "check/validate.hpp"

namespace sparta {

std::vector<RowRange> partition_balanced_nnz(const CsrMatrix& m, int nparts) {
  if (nparts <= 0) throw std::invalid_argument{"partition_balanced_nnz: nparts <= 0"};
  const auto rowptr = m.rowptr();
  const offset_t total = m.nnz();
  std::vector<RowRange> parts;
  parts.reserve(static_cast<std::size_t>(nparts));
  index_t row = 0;
  for (int p = 0; p < nparts; ++p) {
    // Target cumulative nnz at the end of partition p.
    const auto target = static_cast<offset_t>(
        (static_cast<long double>(total) * (p + 1)) / nparts);
    // First row index whose cumulative nnz reaches the target. The search
    // can land on rowptr.end() (index nrows+1) when the target equals the
    // total and trailing rows are empty — clamp into [row, nrows].
    const auto it = std::lower_bound(rowptr.begin() + row + 1, rowptr.end(), target);
    auto end = static_cast<index_t>(it - rowptr.begin());
    if (p == nparts - 1) end = m.nrows();
    end = std::clamp(end, row, m.nrows());
    parts.push_back({row, end});
    row = end;
  }
  parts.back().end = m.nrows();
  SPARTA_CHECK_STRUCTURE(std::span<const RowRange>{parts}, m.nrows());
  return parts;
}

std::vector<RowRange> partition_equal_rows(index_t nrows, int nparts) {
  if (nparts <= 0) throw std::invalid_argument{"partition_equal_rows: nparts <= 0"};
  std::vector<RowRange> parts;
  parts.reserve(static_cast<std::size_t>(nparts));
  const index_t base = nrows / nparts;
  const index_t extra = nrows % nparts;
  index_t row = 0;
  for (int p = 0; p < nparts; ++p) {
    const index_t len = base + (p < extra ? 1 : 0);
    parts.push_back({row, row + len});
    row += len;
  }
  SPARTA_CHECK_STRUCTURE(std::span<const RowRange>{parts}, nrows);
  return parts;
}

offset_t range_nnz(const CsrMatrix& m, RowRange r) {
  return m.rowptr()[static_cast<std::size_t>(r.end)] -
         m.rowptr()[static_cast<std::size_t>(r.begin)];
}

void validate_partition(const std::vector<RowRange>& parts, index_t nrows) {
  // Unconditional full check (historical contract of this entry point); the
  // named-violation implementation lives with the other structural
  // validators in src/check/.
  check::validate_partition(parts, nrows, check::Level::kFull);
}

}  // namespace sparta
