#include "sparse/partition.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/contract.hpp"
#include "check/validate.hpp"
#include "sparse/build.hpp"

namespace sparta {

namespace {

/// Below this the boundary searches are cheaper than a parallel region.
constexpr int kParallelMinParts = 32;

}  // namespace

std::vector<RowRange> partition_balanced_nnz(const CsrMatrix& m, int nparts, int threads) {
  if (nparts <= 0) throw std::invalid_argument{"partition_balanced_nnz: nparts <= 0"};
  const auto rowptr = m.rowptr();
  const offset_t total = m.nnz();
  std::vector<RowRange> parts(static_cast<std::size_t>(nparts));
  // Target cumulative nnz at the end of partition p; the first row index
  // whose cumulative nnz reaches it ends the partition. The search can land
  // on rowptr.end() (index nrows+1) when the target equals the total and
  // trailing rows are empty — clamp into [row, nrows].
  if (nparts >= kParallelMinParts) {
    // Boundary searches are independent when taken over the whole rowptr;
    // the serial fix-up below reproduces the sequential search's lower
    // start bound (begin + row + 1) exactly: a global search that lands at
    // or before `row` (runs of empty rows) would have resolved to row + 1.
    const int nthreads = build::resolve_threads(threads);
    std::vector<index_t> ends(static_cast<std::size_t>(nparts));
#pragma omp parallel for default(none) shared(ends, rowptr, total, nparts) \
    num_threads(nthreads) schedule(static)
    for (int p = 0; p < nparts; ++p) {
      const auto target = static_cast<offset_t>(
          (static_cast<long double>(total) * (p + 1)) / nparts);
      const auto it = std::lower_bound(rowptr.begin() + 1, rowptr.end(), target);
      ends[static_cast<std::size_t>(p)] = static_cast<index_t>(it - rowptr.begin());
    }
    index_t row = 0;
    for (int p = 0; p < nparts; ++p) {
      auto end = ends[static_cast<std::size_t>(p)] <= row
                     ? row + 1
                     : ends[static_cast<std::size_t>(p)];
      if (p == nparts - 1) end = m.nrows();
      end = std::clamp(end, row, m.nrows());
      parts[static_cast<std::size_t>(p)] = {row, end};
      row = end;
    }
  } else {
    index_t row = 0;
    for (int p = 0; p < nparts; ++p) {
      const auto target = static_cast<offset_t>(
          (static_cast<long double>(total) * (p + 1)) / nparts);
      const auto it = std::lower_bound(rowptr.begin() + row + 1, rowptr.end(), target);
      auto end = static_cast<index_t>(it - rowptr.begin());
      if (p == nparts - 1) end = m.nrows();
      end = std::clamp(end, row, m.nrows());
      parts[static_cast<std::size_t>(p)] = {row, end};
      row = end;
    }
  }
  parts.back().end = m.nrows();
  SPARTA_CHECK_STRUCTURE(std::span<const RowRange>{parts}, m.nrows());
  return parts;
}

std::vector<RowRange> partition_equal_rows(index_t nrows, int nparts, int threads) {
  if (nparts <= 0) throw std::invalid_argument{"partition_equal_rows: nparts <= 0"};
  std::vector<RowRange> parts(static_cast<std::size_t>(nparts));
  const index_t base = nrows / nparts;
  const index_t extra = nrows % nparts;
  // Closed form: partition p starts at p*base + min(p, extra), so every
  // range is independent of the others.
  if (nparts >= kParallelMinParts) {
    const int nthreads = build::resolve_threads(threads);
#pragma omp parallel for default(none) shared(parts, nparts, base, extra) \
    num_threads(nthreads) schedule(static)
    for (int p = 0; p < nparts; ++p) {
      const index_t begin = p * base + std::min<index_t>(p, extra);
      const index_t len = base + (p < extra ? 1 : 0);
      parts[static_cast<std::size_t>(p)] = {begin, begin + len};
    }
  } else {
    index_t row = 0;
    for (int p = 0; p < nparts; ++p) {
      const index_t len = base + (p < extra ? 1 : 0);
      parts[static_cast<std::size_t>(p)] = {row, row + len};
      row += len;
    }
  }
  SPARTA_CHECK_STRUCTURE(std::span<const RowRange>{parts}, nrows);
  return parts;
}

offset_t range_nnz(const CsrMatrix& m, RowRange r) {
  return m.rowptr()[static_cast<std::size_t>(r.end)] -
         m.rowptr()[static_cast<std::size_t>(r.begin)];
}

void validate_partition(const std::vector<RowRange>& parts, index_t nrows) {
  // Unconditional full check (historical contract of this entry point); the
  // named-violation implementation lives with the other structural
  // validators in src/check/.
  check::validate_partition(parts, nrows, check::Level::kFull);
}

}  // namespace sparta
