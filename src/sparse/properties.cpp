#include "sparse/properties.hpp"

#include <cmath>

namespace sparta {

RowScan scan_rows(const CsrMatrix& m, int values_per_line) {
  const auto n = static_cast<std::size_t>(m.nrows());
  RowScan scan;
  scan.nnz.resize(n);
  scan.bandwidth.resize(n);
  scan.scatter.resize(n);
  scan.clustering.resize(n);
  scan.misses.resize(n);

  for (index_t i = 0; i < m.nrows(); ++i) {
    const auto cols = m.row_cols(i);
    const auto idx = static_cast<std::size_t>(i);
    const auto nnz_i = static_cast<double>(cols.size());
    scan.nnz[idx] = nnz_i;
    if (cols.empty()) continue;

    const double bw = static_cast<double>(cols.back() - cols.front());
    scan.bandwidth[idx] = bw;
    scan.scatter[idx] = bw > 0.0 ? nnz_i / bw : 0.0;

    index_t ngroups = 1;
    double misses = 1.0;  // first access of the row: compulsory miss
    for (std::size_t j = 1; j < cols.size(); ++j) {
      const index_t gap = cols[j] - cols[j - 1];
      if (gap > 1) ++ngroups;
      if (gap > values_per_line) misses += 1.0;
    }
    scan.clustering[idx] = static_cast<double>(ngroups) / nnz_i;
    scan.misses[idx] = misses;
  }
  return scan;
}

bool is_symmetric(const CsrMatrix& m, value_t tolerance) {
  if (m.nrows() != m.ncols()) return false;
  const CsrMatrix t = m.transpose();
  if (t.rowptr().size() != m.rowptr().size()) return false;
  for (std::size_t i = 0; i < m.rowptr().size(); ++i) {
    if (m.rowptr()[i] != t.rowptr()[i]) return false;
  }
  for (std::size_t j = 0; j < m.colind().size(); ++j) {
    if (m.colind()[j] != t.colind()[j]) return false;
    if (std::abs(m.values()[j] - t.values()[j]) > tolerance) return false;
  }
  return true;
}

index_t count_empty_rows(const CsrMatrix& m) {
  index_t count = 0;
  for (index_t i = 0; i < m.nrows(); ++i) {
    if (m.row_nnz(i) == 0) ++count;
  }
  return count;
}

bool has_full_diagonal(const CsrMatrix& m) {
  if (m.nrows() != m.ncols()) return false;
  for (index_t i = 0; i < m.nrows(); ++i) {
    const auto cols = m.row_cols(i);
    const auto vals = m.row_vals(i);
    bool found = false;
    for (std::size_t j = 0; j < cols.size(); ++j) {
      if (cols[j] == i) {
        found = vals[j] != 0.0;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace sparta
