#include "sparse/delta_csr.hpp"

#include "check/contract.hpp"
#include "check/validate.hpp"

namespace sparta {

std::optional<DeltaWidth> DeltaCsrMatrix::pick_width(const CsrMatrix& csr) {
  index_t max_delta = 0;
  for (index_t i = 0; i < csr.nrows(); ++i) {
    const auto cols = csr.row_cols(i);
    for (std::size_t j = 1; j < cols.size(); ++j) {
      max_delta = std::max(max_delta, cols[j] - cols[j - 1]);
    }
  }
  if (max_delta <= 0xff) return DeltaWidth::k8;
  if (max_delta <= 0xffff) return DeltaWidth::k16;
  return std::nullopt;
}

std::optional<DeltaCsrMatrix> DeltaCsrMatrix::compress(const CsrMatrix& csr) {
  const auto width = pick_width(csr);
  if (!width) return std::nullopt;

  DeltaCsrMatrix out;
  out.nrows_ = csr.nrows();
  out.ncols_ = csr.ncols();
  out.width_ = *width;
  out.rowptr_.assign(csr.rowptr().begin(), csr.rowptr().end());
  out.first_col_.resize(static_cast<std::size_t>(csr.nrows()));
  out.values_.assign(csr.values().begin(), csr.values().end());

  const auto nnz = static_cast<std::size_t>(csr.nnz());
  if (*width == DeltaWidth::k8) {
    out.deltas8_.assign(nnz, 0);
  } else {
    out.deltas16_.assign(nnz, 0);
  }

  for (index_t i = 0; i < csr.nrows(); ++i) {
    const auto cols = csr.row_cols(i);
    const auto base = static_cast<std::size_t>(csr.rowptr()[static_cast<std::size_t>(i)]);
    out.first_col_[static_cast<std::size_t>(i)] = cols.empty() ? 0 : cols[0];
    for (std::size_t j = 1; j < cols.size(); ++j) {
      const auto d = static_cast<std::uint32_t>(cols[j] - cols[j - 1]);
      if (*width == DeltaWidth::k8) {
        out.deltas8_[base + j] = static_cast<std::uint8_t>(d);
      } else {
        out.deltas16_[base + j] = static_cast<std::uint16_t>(d);
      }
    }
  }
  SPARTA_CHECK_STRUCTURE(out);
  return out;
}

std::size_t DeltaCsrMatrix::index_bytes() const {
  const std::size_t delta_bytes =
      width_ == DeltaWidth::k8 ? deltas8_.size() * sizeof(std::uint8_t)
                               : deltas16_.size() * sizeof(std::uint16_t);
  return rowptr_.size() * sizeof(offset_t) + first_col_.size() * sizeof(index_t) + delta_bytes;
}

CsrMatrix DeltaCsrMatrix::decompress() const {
  aligned_vector<offset_t> rowptr(rowptr_.begin(), rowptr_.end());
  aligned_vector<index_t> colind(static_cast<std::size_t>(nnz()));
  aligned_vector<value_t> values(values_.begin(), values_.end());
  for (index_t i = 0; i < nrows_; ++i) {
    const auto b = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i)]);
    const auto e = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i) + 1]);
    index_t col = b < e ? first_col_[static_cast<std::size_t>(i)] : 0;
    for (std::size_t j = b; j < e; ++j) {
      if (j > b) {
        col += width_ == DeltaWidth::k8 ? static_cast<index_t>(deltas8_[j])
                                        : static_cast<index_t>(deltas16_[j]);
      }
      colind[j] = col;
    }
  }
  return CsrMatrix{nrows_, ncols_, std::move(rowptr), std::move(colind), std::move(values)};
}

}  // namespace sparta
