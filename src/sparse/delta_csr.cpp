#include "sparse/delta_csr.hpp"

#include <algorithm>

#include "check/contract.hpp"
#include "check/validate.hpp"
#include "sparse/build.hpp"

namespace sparta {

namespace {

/// Width that fits `max_delta`, or nullopt beyond 16 bits.
std::optional<DeltaWidth> width_for(index_t max_delta) {
  if (max_delta <= 0xff) return DeltaWidth::k8;
  if (max_delta <= 0xffff) return DeltaWidth::k16;
  return std::nullopt;
}

/// Parallel max intra-row delta (rows are independent; integer max is
/// order-insensitive, so the reduction is deterministic).
index_t max_delta_of(const CsrMatrix& csr, int nthreads) {
  const index_t nrows = csr.nrows();
  index_t max_delta = 0;
#pragma omp parallel for default(none) shared(csr, nrows) reduction(max : max_delta) \
    num_threads(nthreads) schedule(static)
  for (index_t i = 0; i < nrows; ++i) {
    const auto cols = csr.row_cols(i);
    index_t local = 0;
    for (std::size_t j = 1; j < cols.size(); ++j) {
      local = std::max(local, cols[j] - cols[j - 1]);
    }
    max_delta = std::max(max_delta, local);
  }
  return max_delta;
}

}  // namespace

std::optional<DeltaWidth> DeltaCsrMatrix::pick_width(const CsrMatrix& csr) {
  index_t max_delta = 0;
  for (index_t i = 0; i < csr.nrows(); ++i) {
    const auto cols = csr.row_cols(i);
    for (std::size_t j = 1; j < cols.size(); ++j) {
      max_delta = std::max(max_delta, cols[j] - cols[j - 1]);
    }
  }
  return width_for(max_delta);
}

std::optional<DeltaCsrMatrix> DeltaCsrMatrix::compress(const CsrMatrix& csr, int threads) {
  const int nthreads = build::resolve_threads(threads);
  build::PhaseRecorder rec{"delta"};

  // Count pass: the one inspection scan delta compression needs — the
  // widest intra-row column delta decides the stream width (or refusal).
  rec.phase("count");
  const auto width = width_for(max_delta_of(csr, nthreads));
  if (!width) return std::nullopt;

  DeltaCsrMatrix out;
  out.nrows_ = csr.nrows();
  out.ncols_ = csr.ncols();
  out.width_ = *width;

  // Fill pass: rowptr/values are element-wise copies of the CSR streams;
  // first_col and the delta stream are per-row independent. Every slot of
  // every array is written (a nonempty row writes its base slot's unused
  // delta as 0, matching the serial builder's zero prefill), so the
  // default-init numa_vector storage is fully first-touched here.
  rec.phase("fill");
  const auto nrows = static_cast<std::ptrdiff_t>(csr.nrows());
  const auto nnz = static_cast<std::size_t>(csr.nnz());
  const auto src_rowptr = csr.rowptr();
  const auto src_values = csr.values();
  out.rowptr_ = numa_vector<offset_t>(static_cast<std::size_t>(nrows) + 1);
  out.first_col_ = numa_vector<index_t>(static_cast<std::size_t>(nrows));
  out.values_ = numa_vector<value_t>(nnz);
  if (*width == DeltaWidth::k8) {
    out.deltas8_ = numa_vector<std::uint8_t>(nnz);
  } else {
    out.deltas16_ = numa_vector<std::uint16_t>(nnz);
  }
  const bool wide = *width == DeltaWidth::k16;
#pragma omp parallel for default(none) \
    shared(out, csr, src_rowptr, src_values, nrows, wide) num_threads(nthreads) \
    schedule(static)
  for (std::ptrdiff_t i = 0; i < nrows; ++i) {
    const auto k = static_cast<std::size_t>(i);
    out.rowptr_[k] = src_rowptr[k];
    if (i == nrows - 1) out.rowptr_[k + 1] = src_rowptr[k + 1];
    const auto cols = csr.row_cols(static_cast<index_t>(i));
    const auto base = static_cast<std::size_t>(src_rowptr[k]);
    out.first_col_[k] = cols.empty() ? 0 : cols[0];
    for (std::size_t j = 0; j < cols.size(); ++j) {
      const auto d = j == 0 ? 0u : static_cast<std::uint32_t>(cols[j] - cols[j - 1]);
      if (wide) {
        out.deltas16_[base + j] = static_cast<std::uint16_t>(d);
      } else {
        out.deltas8_[base + j] = static_cast<std::uint8_t>(d);
      }
      out.values_[base + j] = src_values[base + j];
    }
  }
  if (nrows == 0) out.rowptr_[0] = 0;
  rec.finish(out.bytes());
  SPARTA_CHECK_STRUCTURE(out);
  return out;
}

std::optional<DeltaCsrMatrix> DeltaCsrMatrix::compress_serial(const CsrMatrix& csr) {
  const auto width = pick_width(csr);
  if (!width) return std::nullopt;

  DeltaCsrMatrix out;
  out.nrows_ = csr.nrows();
  out.ncols_ = csr.ncols();
  out.width_ = *width;
  out.rowptr_.assign(csr.rowptr().begin(), csr.rowptr().end());
  out.first_col_.resize(static_cast<std::size_t>(csr.nrows()));
  out.values_.assign(csr.values().begin(), csr.values().end());

  const auto nnz = static_cast<std::size_t>(csr.nnz());
  if (*width == DeltaWidth::k8) {
    out.deltas8_.assign(nnz, 0);
  } else {
    out.deltas16_.assign(nnz, 0);
  }

  for (index_t i = 0; i < csr.nrows(); ++i) {
    const auto cols = csr.row_cols(i);
    const auto base = static_cast<std::size_t>(csr.rowptr()[static_cast<std::size_t>(i)]);
    out.first_col_[static_cast<std::size_t>(i)] = cols.empty() ? 0 : cols[0];
    for (std::size_t j = 1; j < cols.size(); ++j) {
      const auto d = static_cast<std::uint32_t>(cols[j] - cols[j - 1]);
      if (*width == DeltaWidth::k8) {
        out.deltas8_[base + j] = static_cast<std::uint8_t>(d);
      } else {
        out.deltas16_[base + j] = static_cast<std::uint16_t>(d);
      }
    }
  }
  SPARTA_CHECK_STRUCTURE(out);
  return out;
}

std::size_t DeltaCsrMatrix::index_bytes() const {
  const std::size_t delta_bytes =
      width_ == DeltaWidth::k8 ? deltas8_.size() * sizeof(std::uint8_t)
                               : deltas16_.size() * sizeof(std::uint16_t);
  return rowptr_.size() * sizeof(offset_t) + first_col_.size() * sizeof(index_t) + delta_bytes;
}

CsrMatrix DeltaCsrMatrix::decompress() const {
  numa_vector<offset_t> rowptr(rowptr_.begin(), rowptr_.end());
  numa_vector<index_t> colind(static_cast<std::size_t>(nnz()));
  numa_vector<value_t> values(values_.begin(), values_.end());
  for (index_t i = 0; i < nrows_; ++i) {
    const auto b = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i)]);
    const auto e = static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i) + 1]);
    index_t col = b < e ? first_col_[static_cast<std::size_t>(i)] : 0;
    for (std::size_t j = b; j < e; ++j) {
      if (j > b) {
        col += width_ == DeltaWidth::k8 ? static_cast<index_t>(deltas8_[j])
                                        : static_cast<index_t>(deltas16_[j]);
      }
      colind[j] = col;
    }
  }
  return CsrMatrix{nrows_, ncols_, std::move(rowptr), std::move(colind), std::move(values)};
}

}  // namespace sparta
