#include "sparse/build.hpp"

#include <omp.h>

#include <stdexcept>

namespace sparta::build {

int resolve_threads(int threads) {
  if (threads < 0) throw std::invalid_argument{"build: threads < 0"};
  return threads > 0 ? threads : omp_get_max_threads();
}

PhaseRecorder::PhaseRecorder(std::string_view format)
    : enabled_(obs::enabled()), format_(enabled_ ? format : std::string_view{}) {}

void PhaseRecorder::close() {
  if (!enabled_ || current_.empty()) return;
  obs::Registry::global()
      .histogram("sparse.build." + format_ + "." + current_ + ".micros")
      .record(timer_.seconds() * 1e6);
}

void PhaseRecorder::phase(std::string_view name) {
  if (!enabled_) return;
  close();
  current_.assign(name);
  timer_.reset();
}

void PhaseRecorder::finish(std::size_t bytes) {
  if (!enabled_) return;
  close();
  current_.clear();
  obs::Registry::global()
      .counter("sparse.build." + format_ + ".bytes")
      .add(static_cast<double>(bytes));
}

}  // namespace sparta::build
