// Shared plumbing of the parallel inspector pipeline (DESIGN.md §13).
//
// Every format builder in src/sparse/ follows the same two-pass shape:
// parallel count -> prefix-sum scan -> parallel fill into exactly-sized,
// first-touched arrays (numa_vector). This header carries the two pieces
// they all need: thread-count resolution and the per-phase telemetry
// recorder that feeds the `sparse.build.<format>.<phase>.micros` histograms
// and `sparse.build.<format>.bytes` counters of the obs registry.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "common/timer.hpp"
#include "common/types.hpp"
#include "obs/telemetry.hpp"

namespace sparta::build {

/// Resolve a builder `threads` argument: 0 means omp_get_max_threads(),
/// positive is taken as-is, negative throws std::invalid_argument. Builders
/// accept the count explicitly (instead of reading the OpenMP default at
/// each pragma) so tests can prove bit-identical output across counts.
int resolve_threads(int threads);

/// Evenly split `n` items into `nchunks` contiguous ranges; chunk `c` is
/// [chunk_begin(n, nchunks, c), chunk_begin(n, nchunks, c + 1)). The split
/// depends only on (n, nchunks), never on scheduling order.
inline std::size_t chunk_begin(std::size_t n, int nchunks, int c) {
  return n * static_cast<std::size_t>(c) / static_cast<std::size_t>(nchunks);
}

/// Per-phase stopwatch for one builder invocation. Phases are the canonical
/// pipeline stages — "count", "scan", "fill", "permute" — each recorded as
/// `sparse.build.<format>.<phase>.micros`; finish() additionally records the
/// bytes of the produced format into `sparse.build.<format>.bytes`. Inert
/// (no registry access, no strings) while telemetry is disabled, so the
/// serial-vs-parallel smoke bound is not distorted by bookkeeping.
class PhaseRecorder {
 public:
  explicit PhaseRecorder(std::string_view format);

  /// Close the currently open phase (if any) and start `name`.
  void phase(std::string_view name);

  /// Close the last phase and record the produced-bytes counter.
  void finish(std::size_t bytes);

 private:
  void close();

  bool enabled_ = false;
  std::string format_;
  std::string current_;
  Timer timer_;
};

}  // namespace sparta::build
