// Matrix Market (.mtx) I/O.
//
// The paper's suite comes from the University of Florida (SuiteSparse)
// collection, which is distributed in this format. The offline container has
// no network access, so experiments default to generated analogues, but the
// reader lets users run the full pipeline on real downloaded matrices.
//
// Supported: "matrix coordinate {real|integer|pattern} {general|symmetric}".
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace sparta::mm {

/// Parse a Matrix Market stream into COO. Symmetric inputs are expanded to
/// general form (both triangles; the diagonal is not duplicated). Pattern
/// inputs get value 1.0. Throws std::runtime_error on malformed input.
CooMatrix read_coo(std::istream& is);

/// Convenience: read a file straight to CSR.
CsrMatrix read_csr_file(const std::string& path);

/// Write `m` as "matrix coordinate real general" with 17 significant digits
/// (lossless double round-trip).
void write(std::ostream& os, const CsrMatrix& m);
void write_file(const std::string& path, const CsrMatrix& m);

}  // namespace sparta::mm
