// Coordinate (triplet) sparse matrix. The assembly format: generators and
// the Matrix Market reader produce COO, which is then converted to CSR.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace sparta {

/// One nonzero element.
struct Triplet {
  index_t row;
  index_t col;
  value_t value;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Unordered triplet list with fixed dimensions. Duplicate (row, col)
/// entries are legal until compress() merges them.
class CooMatrix {
 public:
  CooMatrix(index_t nrows, index_t ncols);

  /// Bulk assembly: take ownership of a prebuilt triplet list and validate
  /// all coordinates in one pass. The fast path for loaders that know their
  /// entry count up front — no per-entry push_back or repeated bounds
  /// checks. Throws std::out_of_range on the first bad coordinate.
  static CooMatrix from_triplets(index_t nrows, index_t ncols,
                                 std::vector<Triplet> entries);

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] offset_t nnz() const { return static_cast<offset_t>(entries_.size()); }

  /// Append one entry. Throws std::out_of_range on bad coordinates.
  void add(index_t row, index_t col, value_t value);

  /// Reserve storage for n entries.
  void reserve(std::size_t n) { entries_.reserve(n); }

  /// Sort by (row, col) and sum duplicates. Zero-valued results are kept:
  /// explicit zeros are meaningful for structure-only analyses.
  void compress();

  /// True if entries are sorted by (row, col) with no duplicates.
  [[nodiscard]] bool is_compressed() const;

  [[nodiscard]] const std::vector<Triplet>& entries() const { return entries_; }
  [[nodiscard]] std::vector<Triplet>& entries() { return entries_; }

 private:
  index_t nrows_;
  index_t ncols_;
  std::vector<Triplet> entries_;
};

}  // namespace sparta
