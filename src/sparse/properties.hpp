// Structural property scans of a CSR matrix. These are the raw per-row
// quantities that the Table I features summarize, exposed separately so
// tests, the IMB sub-policy and the generators' self-checks can reuse them.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace sparta {

/// Per-row structural scan (one pass over the matrix).
struct RowScan {
  /// nnz_i: nonzeros per row.
  std::vector<double> nnz;
  /// bw_i: column distance between first and last nonzero of the row
  /// (0 for rows with fewer than 2 nonzeros).
  std::vector<double> bandwidth;
  /// scatter_i = nnz_i / bw_i (paper definition; 0 when bw_i == 0).
  std::vector<double> scatter;
  /// clustering_i = ngroups_i / nnz_i where ngroups_i counts maximal runs of
  /// consecutive columns (0 for empty rows).
  std::vector<double> clustering;
  /// misses_i: nonzeros whose column distance from the previous nonzero in
  /// the row exceeds the number of values per cache line (naive miss count,
  /// paper §III-D). The first nonzero of a row always counts as a miss.
  std::vector<double> misses;
};

/// Run the scan. `values_per_line` is the number of matrix values fitting in
/// one cache line of the target platform (8 for 64-byte lines and doubles).
RowScan scan_rows(const CsrMatrix& m, int values_per_line = 8);

/// True if the matrix is structurally and numerically symmetric.
bool is_symmetric(const CsrMatrix& m, value_t tolerance = 0.0);

/// Number of rows with no nonzeros.
index_t count_empty_rows(const CsrMatrix& m);

/// True if every diagonal entry (i, i) is present and nonzero — a
/// prerequisite for the Jacobi-preconditioned solvers.
bool has_full_diagonal(const CsrMatrix& m);

}  // namespace sparta
