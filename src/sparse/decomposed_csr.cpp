#include "sparse/decomposed_csr.hpp"

#include <algorithm>

#include "check/contract.hpp"
#include "check/validate.hpp"

namespace sparta {

index_t DecomposedCsrMatrix::default_threshold(const CsrMatrix& csr) {
  const double avg =
      csr.nrows() > 0 ? static_cast<double>(csr.nnz()) / static_cast<double>(csr.nrows()) : 0.0;
  return std::max(kMinLongRow, static_cast<index_t>(8.0 * avg));
}

DecomposedCsrMatrix DecomposedCsrMatrix::decompose(const CsrMatrix& csr, index_t threshold) {
  DecomposedCsrMatrix out;
  out.threshold_ = threshold > 0 ? threshold : default_threshold(csr);

  const auto n = static_cast<std::size_t>(csr.nrows());
  aligned_vector<offset_t> srowptr(n + 1, 0);
  aligned_vector<index_t> scolind;
  aligned_vector<value_t> svalues;
  scolind.reserve(static_cast<std::size_t>(csr.nnz()));
  svalues.reserve(static_cast<std::size_t>(csr.nnz()));

  for (index_t i = 0; i < csr.nrows(); ++i) {
    const auto cols = csr.row_cols(i);
    const auto vals = csr.row_vals(i);
    if (static_cast<index_t>(cols.size()) > out.threshold_) {
      out.long_rows_.push_back(i);
      out.long_colind_.insert(out.long_colind_.end(), cols.begin(), cols.end());
      out.long_values_.insert(out.long_values_.end(), vals.begin(), vals.end());
      out.long_rowptr_.push_back(static_cast<offset_t>(out.long_colind_.size()));
      srowptr[static_cast<std::size_t>(i) + 1] = srowptr[static_cast<std::size_t>(i)];
    } else {
      scolind.insert(scolind.end(), cols.begin(), cols.end());
      svalues.insert(svalues.end(), vals.begin(), vals.end());
      srowptr[static_cast<std::size_t>(i) + 1] =
          srowptr[static_cast<std::size_t>(i)] + static_cast<offset_t>(cols.size());
    }
  }
  out.short_part_ =
      CsrMatrix{csr.nrows(), csr.ncols(), std::move(srowptr), std::move(scolind),
                std::move(svalues)};
  // nnz conservation against the source: the split must partition the
  // nonzeros exactly (nothing dropped, nothing double-counted).
  SPARTA_CHECK_STRUCTURE(out, csr);
  return out;
}

offset_t DecomposedCsrMatrix::nnz() const {
  return short_part_.nnz() + long_rowptr_.back();
}

CsrMatrix DecomposedCsrMatrix::recompose() const {
  CooMatrix coo{nrows(), ncols()};
  coo.reserve(static_cast<std::size_t>(nnz()));
  for (index_t i = 0; i < nrows(); ++i) {
    const auto cols = short_part_.row_cols(i);
    const auto vals = short_part_.row_vals(i);
    for (std::size_t j = 0; j < cols.size(); ++j) coo.add(i, cols[j], vals[j]);
  }
  for (std::size_t k = 0; k < long_rows_.size(); ++k) {
    const auto b = static_cast<std::size_t>(long_rowptr_[k]);
    const auto e = static_cast<std::size_t>(long_rowptr_[k + 1]);
    for (std::size_t j = b; j < e; ++j) {
      coo.add(long_rows_[k], long_colind_[j], long_values_[j]);
    }
  }
  return CsrMatrix::from_coo(coo);
}

std::size_t DecomposedCsrMatrix::bytes() const {
  return short_part_.bytes() + long_rows_.size() * sizeof(index_t) +
         long_rowptr_.size() * sizeof(offset_t) + long_colind_.size() * sizeof(index_t) +
         long_values_.size() * sizeof(value_t);
}

}  // namespace sparta
