#include "sparse/decomposed_csr.hpp"

#include <algorithm>
#include <vector>

#include "check/contract.hpp"
#include "check/validate.hpp"
#include "sparse/build.hpp"

namespace sparta {

index_t DecomposedCsrMatrix::default_threshold(const CsrMatrix& csr) {
  const double avg =
      csr.nrows() > 0 ? static_cast<double>(csr.nnz()) / static_cast<double>(csr.nrows()) : 0.0;
  return std::max(kMinLongRow, static_cast<index_t>(8.0 * avg));
}

namespace {

/// Per-chunk classification totals for the parallel decompose count pass.
struct ChunkTally {
  offset_t short_nnz = 0;
  index_t long_rows = 0;
  offset_t long_nnz = 0;
};

}  // namespace

DecomposedCsrMatrix DecomposedCsrMatrix::decompose(const CsrMatrix& csr, index_t threshold,
                                                   int threads) {
  const int nthreads = build::resolve_threads(threads);
  build::PhaseRecorder rec{"decomposed"};
  DecomposedCsrMatrix out;
  out.threshold_ = threshold > 0 ? threshold : default_threshold(csr);
  const index_t thr = out.threshold_;

  // Count pass: rows classify independently (long iff nnz > threshold);
  // fixed row chunks tally short nnz / long rows / long nnz. Chunking never
  // leaks into the output — the scan turns tallies into absolute offsets.
  rec.phase("count");
  const auto n = static_cast<std::size_t>(csr.nrows());
  const int nchunks = nthreads;
  std::vector<ChunkTally> tally(static_cast<std::size_t>(nchunks));
#pragma omp parallel for default(none) shared(tally, csr, n, nchunks, thr) \
    num_threads(nthreads) schedule(static)
  for (int cidx = 0; cidx < nchunks; ++cidx) {
    ChunkTally t;
    const auto begin = build::chunk_begin(n, nchunks, cidx);
    const auto end = build::chunk_begin(n, nchunks, cidx + 1);
    for (std::size_t i = begin; i < end; ++i) {
      const auto len = static_cast<offset_t>(csr.row_nnz(static_cast<index_t>(i)));
      if (static_cast<index_t>(len) > thr) {
        ++t.long_rows;
        t.long_nnz += len;
      } else {
        t.short_nnz += len;
      }
    }
    tally[static_cast<std::size_t>(cidx)] = t;
  }

  // Scan pass: exclusive prefix over the chunk tallies -> per-chunk bases.
  rec.phase("scan");
  std::vector<ChunkTally> base(static_cast<std::size_t>(nchunks));
  ChunkTally run;
  for (int cidx = 0; cidx < nchunks; ++cidx) {
    base[static_cast<std::size_t>(cidx)] = run;
    run.short_nnz += tally[static_cast<std::size_t>(cidx)].short_nnz;
    run.long_rows += tally[static_cast<std::size_t>(cidx)].long_rows;
    run.long_nnz += tally[static_cast<std::size_t>(cidx)].long_nnz;
  }

  // Fill pass: each chunk walks its rows with running offsets seeded from
  // its base, writing every output slot absolutely — srowptr[i+1], the long
  // row list/rowptr, and the copied colind/values slices — so the layout is
  // identical to the serial row-order build and every default-init
  // numa_vector page is first-touched by its filling thread.
  rec.phase("fill");
  numa_vector<offset_t> srowptr(n + 1);
  srowptr[0] = 0;
  numa_vector<index_t> scolind(static_cast<std::size_t>(run.short_nnz));
  numa_vector<value_t> svalues(static_cast<std::size_t>(run.short_nnz));
  out.long_rows_ = numa_vector<index_t>(static_cast<std::size_t>(run.long_rows));
  out.long_rowptr_ = numa_vector<offset_t>(static_cast<std::size_t>(run.long_rows) + 1);
  out.long_rowptr_[0] = 0;
  out.long_colind_ = numa_vector<index_t>(static_cast<std::size_t>(run.long_nnz));
  out.long_values_ = numa_vector<value_t>(static_cast<std::size_t>(run.long_nnz));
#pragma omp parallel for default(none) \
    shared(out, csr, base, srowptr, scolind, svalues, n, nchunks, thr) num_threads(nthreads) \
    schedule(static)
  for (int cidx = 0; cidx < nchunks; ++cidx) {
    offset_t short_off = base[static_cast<std::size_t>(cidx)].short_nnz;
    auto k = static_cast<std::size_t>(base[static_cast<std::size_t>(cidx)].long_rows);
    offset_t long_off = base[static_cast<std::size_t>(cidx)].long_nnz;
    const auto begin = build::chunk_begin(n, nchunks, cidx);
    const auto end = build::chunk_begin(n, nchunks, cidx + 1);
    for (std::size_t i = begin; i < end; ++i) {
      const auto cols = csr.row_cols(static_cast<index_t>(i));
      const auto vals = csr.row_vals(static_cast<index_t>(i));
      if (static_cast<index_t>(cols.size()) > thr) {
        out.long_rows_[k] = static_cast<index_t>(i);
        std::copy(cols.begin(), cols.end(),
                  out.long_colind_.begin() + static_cast<std::ptrdiff_t>(long_off));
        std::copy(vals.begin(), vals.end(),
                  out.long_values_.begin() + static_cast<std::ptrdiff_t>(long_off));
        long_off += static_cast<offset_t>(cols.size());
        out.long_rowptr_[k + 1] = long_off;
        ++k;
      } else {
        std::copy(cols.begin(), cols.end(),
                  scolind.begin() + static_cast<std::ptrdiff_t>(short_off));
        std::copy(vals.begin(), vals.end(),
                  svalues.begin() + static_cast<std::ptrdiff_t>(short_off));
        short_off += static_cast<offset_t>(cols.size());
      }
      srowptr[i + 1] = short_off;
    }
  }
  out.short_part_ =
      CsrMatrix{csr.nrows(), csr.ncols(), std::move(srowptr), std::move(scolind),
                std::move(svalues)};
  rec.finish(out.bytes());
  // nnz conservation against the source: the split must partition the
  // nonzeros exactly (nothing dropped, nothing double-counted).
  SPARTA_CHECK_STRUCTURE(out, csr);
  return out;
}

DecomposedCsrMatrix DecomposedCsrMatrix::decompose_serial(const CsrMatrix& csr,
                                                          index_t threshold) {
  DecomposedCsrMatrix out;
  out.threshold_ = threshold > 0 ? threshold : default_threshold(csr);

  const auto n = static_cast<std::size_t>(csr.nrows());
  numa_vector<offset_t> srowptr(n + 1, 0);
  numa_vector<index_t> scolind;
  numa_vector<value_t> svalues;
  scolind.reserve(static_cast<std::size_t>(csr.nnz()));
  svalues.reserve(static_cast<std::size_t>(csr.nnz()));

  for (index_t i = 0; i < csr.nrows(); ++i) {
    const auto cols = csr.row_cols(i);
    const auto vals = csr.row_vals(i);
    if (static_cast<index_t>(cols.size()) > out.threshold_) {
      out.long_rows_.push_back(i);
      out.long_colind_.insert(out.long_colind_.end(), cols.begin(), cols.end());
      out.long_values_.insert(out.long_values_.end(), vals.begin(), vals.end());
      out.long_rowptr_.push_back(static_cast<offset_t>(out.long_colind_.size()));
      srowptr[static_cast<std::size_t>(i) + 1] = srowptr[static_cast<std::size_t>(i)];
    } else {
      scolind.insert(scolind.end(), cols.begin(), cols.end());
      svalues.insert(svalues.end(), vals.begin(), vals.end());
      srowptr[static_cast<std::size_t>(i) + 1] =
          srowptr[static_cast<std::size_t>(i)] + static_cast<offset_t>(cols.size());
    }
  }
  out.short_part_ =
      CsrMatrix{csr.nrows(), csr.ncols(), std::move(srowptr), std::move(scolind),
                std::move(svalues)};
  // nnz conservation against the source: the split must partition the
  // nonzeros exactly (nothing dropped, nothing double-counted).
  SPARTA_CHECK_STRUCTURE(out, csr);
  return out;
}

offset_t DecomposedCsrMatrix::nnz() const {
  return short_part_.nnz() + long_rowptr_.back();
}

CsrMatrix DecomposedCsrMatrix::recompose() const {
  CooMatrix coo{nrows(), ncols()};
  coo.reserve(static_cast<std::size_t>(nnz()));
  for (index_t i = 0; i < nrows(); ++i) {
    const auto cols = short_part_.row_cols(i);
    const auto vals = short_part_.row_vals(i);
    for (std::size_t j = 0; j < cols.size(); ++j) coo.add(i, cols[j], vals[j]);
  }
  for (std::size_t k = 0; k < long_rows_.size(); ++k) {
    const auto b = static_cast<std::size_t>(long_rowptr_[k]);
    const auto e = static_cast<std::size_t>(long_rowptr_[k + 1]);
    for (std::size_t j = b; j < e; ++j) {
      coo.add(long_rows_[k], long_colind_[j], long_values_[j]);
    }
  }
  return CsrMatrix::from_coo(coo);
}

std::size_t DecomposedCsrMatrix::bytes() const {
  return short_part_.bytes() + long_rows_.size() * sizeof(index_t) +
         long_rowptr_.size() * sizeof(offset_t) + long_colind_.size() * sizeof(index_t) +
         long_values_.size() * sizeof(value_t);
}

}  // namespace sparta
