// BCSR (Block Compressed Sparse Row) with fixed r x c register blocking —
// the storage format behind OSKI/SPARSITY-style autotuning (paper §V,
// related work). Nonzeros are grouped into dense r x c blocks aligned to a
// block grid; blocks are padded with explicit zeros, trading extra value
// traffic (fill) for eliminated column indices (one per block) and
// unrollable register-resident inner loops.
//
// Role in this repo: completes the related-work format family next to
// SELL-C-sigma; the fill ratio it exposes is the classic register-blocking
// profitability signal.
#pragma once

#include <span>

#include "common/numa.hpp"
#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace sparta {

class BcsrMatrix {
 public:
  /// Convert from CSR with r x c blocks (r, c >= 1). Throws
  /// std::invalid_argument on non-positive block dimensions. The conversion
  /// is a parallel two-pass builder (per-thread stamp arrays discover the
  /// distinct blocks of each block-row; prefix sum; exact-fill); `threads`
  /// = 0 means omp_get_max_threads() and the output is bit-identical to
  /// from_csr_serial for every thread count.
  static BcsrMatrix from_csr(const CsrMatrix& m, index_t r, index_t c, int threads = 0);

  /// Single-threaded reference builder (the pre-pipeline implementation);
  /// kept as the bit-identity oracle for tests and the preprocessing bench.
  static BcsrMatrix from_csr_serial(const CsrMatrix& m, index_t r, index_t c);

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  /// True nonzeros of the source matrix.
  [[nodiscard]] offset_t nnz() const { return nnz_; }
  [[nodiscard]] index_t block_rows() const { return r_; }
  [[nodiscard]] index_t block_cols() const { return c_; }
  /// Number of stored blocks.
  [[nodiscard]] offset_t nblocks() const {
    return static_cast<offset_t>(block_colind_.size());
  }
  /// Stored values (blocks x r x c) over true nonzeros — 1.0 means the
  /// blocking is free; OSKI's heuristics reject block shapes whose fill
  /// outweighs the index savings.
  [[nodiscard]] double fill_ratio() const {
    return nnz_ > 0 ? static_cast<double>(nblocks()) * r_ * c_ / static_cast<double>(nnz_)
                    : 1.0;
  }

  /// Block-row pointer (nrows/r rounded up, +1 entries) into block arrays.
  [[nodiscard]] std::span<const offset_t> block_rowptr() const { return block_rowptr_; }
  /// Column (in block units) of each block.
  [[nodiscard]] std::span<const index_t> block_colind() const { return block_colind_; }
  /// Dense block payloads, row-major within each block.
  [[nodiscard]] std::span<const value_t> values() const { return values_; }

  [[nodiscard]] std::size_t index_bytes() const {
    return block_rowptr_.size() * sizeof(offset_t) + block_colind_.size() * sizeof(index_t);
  }
  [[nodiscard]] std::size_t value_bytes() const { return values_.size() * sizeof(value_t); }
  [[nodiscard]] std::size_t bytes() const { return index_bytes() + value_bytes(); }

  /// Convert back to CSR, dropping the explicit padding zeros (round-trip
  /// tested against the source matrix).
  [[nodiscard]] CsrMatrix to_csr() const;

 private:
  BcsrMatrix() = default;

  index_t nrows_ = 0;
  index_t ncols_ = 0;
  index_t r_ = 1;
  index_t c_ = 1;
  offset_t nnz_ = 0;
  numa_vector<offset_t> block_rowptr_{0};
  numa_vector<index_t> block_colind_;
  numa_vector<value_t> values_;
};

/// Serial reference SpMV on BCSR (golden implementation for tests).
void spmv_bcsr_reference(const BcsrMatrix& a, std::span<const value_t> x,
                         std::span<value_t> y);

}  // namespace sparta
