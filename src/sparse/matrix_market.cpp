#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace sparta::mm {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error{"matrix market: " + what};
}

}  // namespace

CooMatrix read_coo(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) fail("empty stream");

  std::istringstream header{line};
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") fail("missing %%MatrixMarket banner");
  if (lower(object) != "matrix" || lower(format) != "coordinate") {
    fail("only 'matrix coordinate' is supported");
  }
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer") {
    fail("unsupported field type '" + field + "'");
  }
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    fail("unsupported symmetry '" + symmetry + "'");
  }

  // Skip comments, find the size line.
  long long nrows = -1, ncols = -1, nnz = -1;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ss{line};
    if (!(ss >> nrows >> ncols >> nnz)) fail("bad size line");
    break;
  }
  if (nrows < 0) fail("missing size line");
  if (nrows > std::numeric_limits<index_t>::max() || ncols > std::numeric_limits<index_t>::max()) {
    fail("matrix dimensions exceed 32-bit index range");
  }

  // Entry parsing avoids an istringstream per line (strtoll/strtod walk the
  // line buffer directly) and grows nothing: the triplet list is reserved to
  // the exact declared count first, and — for symmetric files — regrown once
  // to the exact mirrored size counted during the parse (diagonal entries
  // have no mirror, so a blanket 2*nnz reserve would over-allocate).
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(nnz));
  long long seen = 0;
  long long off_diagonal = 0;
  while (seen < nnz && std::getline(is, line)) {
    if (line.empty() || line[0] == '%') continue;
    const char* p = line.c_str();
    char* end = nullptr;
    const long long r = std::strtoll(p, &end, 10);
    if (end == p) fail("bad entry line: " + line);
    p = end;
    const long long c = std::strtoll(p, &end, 10);
    if (end == p) fail("bad entry line: " + line);
    p = end;
    double v = 1.0;
    if (!pattern) {
      v = std::strtod(p, &end);
      if (end == p) fail("missing value: " + line);
    }
    if (r < 1 || r > nrows || c < 1 || c > ncols) fail("entry out of range: " + line);
    // The format stores only the lower triangle of a symmetric matrix
    // (Matrix Market spec §4): an upper-triangle entry is malformed, not an
    // alternative convention, and silently mirroring it would double-count
    // against files that also carry the paired lower entry.
    if (symmetric && c > r) fail("upper-triangle entry in symmetric file: " + line);
    triplets.push_back({static_cast<index_t>(r - 1), static_cast<index_t>(c - 1), v});
    if (symmetric && r != c) ++off_diagonal;
    ++seen;
  }
  if (seen != nnz) fail("fewer entries than declared");
  if (off_diagonal > 0) {
    triplets.reserve(static_cast<std::size_t>(nnz + off_diagonal));
    const std::size_t stored = triplets.size();
    for (std::size_t k = 0; k < stored; ++k) {
      const Triplet t = triplets[k];  // copy: don't hold a reference across push_back
      if (t.row != t.col) triplets.push_back({t.col, t.row, t.value});
    }
  }
  CooMatrix coo = CooMatrix::from_triplets(static_cast<index_t>(nrows),
                                           static_cast<index_t>(ncols), std::move(triplets));
  coo.compress();
  return coo;
}

CsrMatrix read_csr_file(const std::string& path) {
  std::ifstream f{path};
  if (!f) fail("cannot open '" + path + "'");
  return CsrMatrix::from_coo(read_coo(f));
}

void write(std::ostream& os, const CsrMatrix& m) {
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << m.nrows() << ' ' << m.ncols() << ' ' << m.nnz() << '\n';
  os << std::setprecision(17);
  for (index_t i = 0; i < m.nrows(); ++i) {
    const auto cols = m.row_cols(i);
    const auto vals = m.row_vals(i);
    for (std::size_t j = 0; j < cols.size(); ++j) {
      os << (i + 1) << ' ' << (cols[j] + 1) << ' ' << vals[j] << '\n';
    }
  }
}

void write_file(const std::string& path, const CsrMatrix& m) {
  std::ofstream f{path};
  if (!f) fail("cannot open '" + path + "' for writing");
  write(f, m);
}

}  // namespace sparta::mm
