// Compressed Sparse Row storage — the baseline format of the paper and the
// substrate every optimization in the pool starts from.
#pragma once

#include <span>

#include "common/types.hpp"
#include "sparse/coo.hpp"

namespace sparta {

/// Immutable-after-construction CSR matrix.
///
/// Storage: `rowptr` (nrows+1 offsets), `colind` (nnz column indices, sorted
/// within each row), `values` (nnz doubles). Memory footprint accessors are
/// provided because the per-class performance bounds of the paper are
/// computed directly from byte counts.
class CsrMatrix {
 public:
  CsrMatrix() : nrows_(0), ncols_(0), rowptr_{0} {}

  /// Take ownership of prebuilt arrays. Throws std::invalid_argument if the
  /// structure is malformed (see validate()).
  CsrMatrix(index_t nrows, index_t ncols, aligned_vector<offset_t> rowptr,
            aligned_vector<index_t> colind, aligned_vector<value_t> values);

  /// Build from a COO matrix (compresses a copy if needed).
  static CsrMatrix from_coo(const CooMatrix& coo);

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] offset_t nnz() const { return rowptr_.back(); }

  [[nodiscard]] std::span<const offset_t> rowptr() const { return rowptr_; }
  [[nodiscard]] std::span<const index_t> colind() const { return colind_; }
  [[nodiscard]] std::span<const value_t> values() const { return values_; }
  [[nodiscard]] std::span<value_t> values_mut() { return values_; }

  /// Number of nonzeros in row i.
  [[nodiscard]] index_t row_nnz(index_t i) const {
    return static_cast<index_t>(rowptr_[static_cast<std::size_t>(i) + 1] -
                                rowptr_[static_cast<std::size_t>(i)]);
  }

  /// Column indices / values of row i.
  [[nodiscard]] std::span<const index_t> row_cols(index_t i) const;
  [[nodiscard]] std::span<const value_t> row_vals(index_t i) const;

  /// Bytes of the index structures (rowptr + colind).
  [[nodiscard]] std::size_t index_bytes() const;
  /// Bytes of the value array.
  [[nodiscard]] std::size_t value_bytes() const;
  /// Total matrix bytes (index + value).
  [[nodiscard]] std::size_t bytes() const { return index_bytes() + value_bytes(); }

  /// Working-set bytes of one SpMV: matrix + x + y.
  [[nodiscard]] std::size_t spmv_working_set_bytes() const;

  /// Structural + ordering invariants; throws std::invalid_argument with a
  /// description on the first violation.
  void validate() const;

  /// Transpose (used by symmetric expansion tests and GMRES experiments).
  [[nodiscard]] CsrMatrix transpose() const;

  /// Copy of rows [begin, end) as a standalone (end-begin) x ncols matrix.
  /// Used by the partitioned bound analysis (paper's future-work idea of
  /// looking at the matrix "in partitions, instead of as a whole").
  [[nodiscard]] CsrMatrix slice_rows(index_t begin, index_t end) const;

  friend bool operator==(const CsrMatrix&, const CsrMatrix&) = default;

 private:
  index_t nrows_;
  index_t ncols_;
  aligned_vector<offset_t> rowptr_;
  aligned_vector<index_t> colind_;
  aligned_vector<value_t> values_;
};

/// Reference (serial, obviously-correct) SpMV: y = A * x. Used as the golden
/// implementation that every optimized kernel is tested against.
void spmv_reference(const CsrMatrix& a, std::span<const value_t> x, std::span<value_t> y);

}  // namespace sparta
