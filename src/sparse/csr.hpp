// Compressed Sparse Row storage — the baseline format of the paper and the
// substrate every optimization in the pool starts from.
#pragma once

#include <span>

#include "common/numa.hpp"
#include "common/types.hpp"
#include "sparse/coo.hpp"

namespace sparta {

/// Immutable-after-construction CSR matrix.
///
/// Storage: `rowptr` (nrows+1 offsets), `colind` (nnz column indices, sorted
/// within each row), `values` (nnz doubles). Memory footprint accessors are
/// provided because the per-class performance bounds of the paper are
/// computed directly from byte counts.
class CsrMatrix {
 public:
  CsrMatrix() : nrows_(0), ncols_(0), rowptr_{0} {}

  /// Take ownership of prebuilt arrays. Throws std::invalid_argument if the
  /// structure is malformed (see validate()). Storage is numa_vector so
  /// producers can size exactly and first-touch from their fill threads.
  CsrMatrix(index_t nrows, index_t ncols, numa_vector<offset_t> rowptr,
            numa_vector<index_t> colind, numa_vector<value_t> values);

  /// Build from a COO matrix (compresses a copy if needed). The conversion
  /// is a two-pass parallel builder: rowptr boundaries by binary search over
  /// the sorted entries, then an element-wise parallel fill that first-
  /// touches colind/values. `threads` = 0 means omp_get_max_threads(); the
  /// output is bit-identical for every thread count.
  static CsrMatrix from_coo(const CooMatrix& coo, int threads = 0);

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] offset_t nnz() const { return rowptr_.back(); }

  [[nodiscard]] std::span<const offset_t> rowptr() const { return rowptr_; }
  [[nodiscard]] std::span<const index_t> colind() const { return colind_; }
  [[nodiscard]] std::span<const value_t> values() const { return values_; }
  [[nodiscard]] std::span<value_t> values_mut() { return values_; }

  /// Number of nonzeros in row i.
  [[nodiscard]] index_t row_nnz(index_t i) const {
    return static_cast<index_t>(rowptr_[static_cast<std::size_t>(i) + 1] -
                                rowptr_[static_cast<std::size_t>(i)]);
  }

  /// Column indices / values of row i.
  [[nodiscard]] std::span<const index_t> row_cols(index_t i) const;
  [[nodiscard]] std::span<const value_t> row_vals(index_t i) const;

  /// Bytes of the index structures (rowptr + colind).
  [[nodiscard]] std::size_t index_bytes() const;
  /// Bytes of the value array.
  [[nodiscard]] std::size_t value_bytes() const;
  /// Total matrix bytes (index + value).
  [[nodiscard]] std::size_t bytes() const { return index_bytes() + value_bytes(); }

  /// Working-set bytes of one SpMV: matrix + x + y.
  [[nodiscard]] std::size_t spmv_working_set_bytes() const;

  /// Structural + ordering invariants; throws std::invalid_argument with a
  /// description on the first violation.
  void validate() const;

  /// Transpose (used by symmetric expansion tests and GMRES experiments).
  [[nodiscard]] CsrMatrix transpose() const;

  /// Copy of rows [begin, end) as a standalone (end-begin) x ncols matrix.
  /// Used by the partitioned bound analysis (paper's future-work idea of
  /// looking at the matrix "in partitions, instead of as a whole").
  [[nodiscard]] CsrMatrix slice_rows(index_t begin, index_t end) const;

  friend bool operator==(const CsrMatrix&, const CsrMatrix&) = default;

 private:
  index_t nrows_;
  index_t ncols_;
  numa_vector<offset_t> rowptr_;
  numa_vector<index_t> colind_;
  numa_vector<value_t> values_;
};

/// Reference (serial, obviously-correct) SpMV: y = A * x. Used as the golden
/// implementation that every optimized kernel is tested against.
void spmv_reference(const CsrMatrix& a, std::span<const value_t> x, std::span<value_t> y);

}  // namespace sparta
