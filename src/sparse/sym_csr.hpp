// Symmetric CSR storage: strict lower triangle + dense diagonal.
//
// The paper classifies most SpMV kernels as memory-bandwidth bound and
// prescribes matrix-traffic compression as the primary mitigation; for
// symmetric inputs (CG's SPD systems are the flagship case) the strongest
// compression available is to simply not store the upper triangle. One
// stored nonzero a(i, j) with j < i then contributes to both y[i] (the
// direct product with x[j]) and y[j] (the mirrored product with x[i]),
// cutting the streamed colind/values bytes roughly in half at the price of
// a scattered write — resolved by the conflict-free two-phase kernels in
// kernels/spmv_sym.hpp, not by atomics.
//
// Layout:
//  - `rowptr`/`colind`/`values`: CSR of the strict lower triangle (every
//    stored column index is < its row index; columns sorted within a row);
//  - `diag`: dense diagonal, one value per row, 0.0 where the source had no
//    diagonal entry;
//  - `diag_present`: one flag byte per row so expand() reproduces the source
//    pattern bit-for-bit, including explicitly stored zero diagonals.
//
// Built from a general CSR via the established two-pass parallel
// count/scan/fill pipeline (DESIGN.md §13) with a serial reference twin;
// the output is bit-identical for every thread count. Both builders verify
// the source is square and pattern+value symmetric (every upper entry must
// have a bit-equal lower mirror) and throw check::ValidationError otherwise.
#pragma once

#include <cstdint>
#include <span>

#include "common/numa.hpp"
#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace sparta {

class SymCsrMatrix {
 public:
  SymCsrMatrix() : rowptr_{0} {}

  /// Parallel two-pass build from a symmetric general CSR. `threads` = 0
  /// means omp_get_max_threads(); negative throws std::invalid_argument.
  /// Throws check::ValidationError (violation "symcsr.source.*") if the
  /// source is not square or not exactly symmetric.
  static SymCsrMatrix build(const CsrMatrix& a, int threads = 0);

  /// Serial reference twin of build() — the golden output the parallel
  /// builder is asserted bit-identical against.
  static SymCsrMatrix build_serial(const CsrMatrix& a);

  /// Reconstruct the general (eagerly mirrored) CSR. Test-only round-trip
  /// path: the result equals the source matrix bit-for-bit.
  [[nodiscard]] CsrMatrix expand() const;

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return nrows_; }
  /// Nonzeros of the *source* matrix this storage represents
  /// (2 * lower_nnz() + stored diagonal entries).
  [[nodiscard]] offset_t nnz() const { return source_nnz_; }
  /// Strictly-lower-triangular entries actually stored.
  [[nodiscard]] offset_t lower_nnz() const { return rowptr_.back(); }
  /// Diagonal entries present in the source pattern.
  [[nodiscard]] index_t diag_entries() const { return diag_entries_; }

  [[nodiscard]] std::span<const offset_t> rowptr() const { return rowptr_; }
  [[nodiscard]] std::span<const index_t> colind() const { return colind_; }
  [[nodiscard]] std::span<const value_t> values() const { return values_; }
  [[nodiscard]] std::span<const value_t> diag() const { return diag_; }
  [[nodiscard]] std::span<const std::uint8_t> diag_present() const { return diag_present_; }

  /// Strictly-lower column indices / values of row i.
  [[nodiscard]] std::span<const index_t> row_cols(index_t i) const;
  [[nodiscard]] std::span<const value_t> row_vals(index_t i) const;

  /// Bytes of the index structures (rowptr + colind).
  [[nodiscard]] std::size_t index_bytes() const;
  /// Bytes of the value arrays (lower values + dense diagonal).
  [[nodiscard]] std::size_t value_bytes() const;
  /// Total bytes the SpMV kernel streams (index + value; the presence flags
  /// are build/expand metadata the kernel never reads).
  [[nodiscard]] std::size_t bytes() const { return index_bytes() + value_bytes(); }

  friend bool operator==(const SymCsrMatrix&, const SymCsrMatrix&) = default;

 private:
  index_t nrows_ = 0;
  offset_t source_nnz_ = 0;
  index_t diag_entries_ = 0;
  numa_vector<offset_t> rowptr_;
  numa_vector<index_t> colind_;
  numa_vector<value_t> values_;
  numa_vector<value_t> diag_;
  numa_vector<std::uint8_t> diag_present_;
};

}  // namespace sparta
