// Row partitioning schemes for parallel SpMV.
//
// The paper's baseline uses "a static one-dimensional row partitioning
// scheme, where each partition has approximately equal number of nonzero
// elements and is assigned to a single thread" (§IV-A). The vendor baseline
// uses a conventional equal-rows static split, and the IMB optimization can
// switch to dynamic (OpenMP "auto"-like) scheduling.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace sparta {

/// Half-open row range [begin, end) owned by one thread.
struct RowRange {
  index_t begin;
  index_t end;

  [[nodiscard]] index_t size() const { return end - begin; }
  friend bool operator==(const RowRange&, const RowRange&) = default;
};

/// Partition rows so that each of `nparts` ranges carries approximately
/// equal nonzeros (binary search over rowptr for each boundary). Ranges
/// cover [0, nrows) exactly, in order, some possibly empty. The boundary
/// searches run in parallel for large `nparts` (`threads` = 0 means
/// omp_get_max_threads()); the result is identical for every thread count.
std::vector<RowRange> partition_balanced_nnz(const CsrMatrix& m, int nparts,
                                             int threads = 0);

/// Conventional static split: approximately equal row counts. Closed-form
/// per-partition bounds, parallel for large `nparts`.
std::vector<RowRange> partition_equal_rows(index_t nrows, int nparts, int threads = 0);

/// Nonzeros inside a row range.
offset_t range_nnz(const CsrMatrix& m, RowRange r);

/// Validate that `parts` is an ordered exact cover of [0, nrows).
/// Throws std::invalid_argument otherwise.
void validate_partition(const std::vector<RowRange>& parts, index_t nrows);

}  // namespace sparta
