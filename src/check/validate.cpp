#include "check/validate.hpp"

#include <algorithm>
#include <vector>

namespace sparta::check {

ValidationError::ValidationError(std::string violation, const std::string& detail)
    : std::invalid_argument(violation + ": " + detail), violation_(std::move(violation)) {}

namespace {

[[noreturn]] void fail_v(std::string violation, const std::string& detail) {
  throw ValidationError{std::move(violation), detail};
}

/// Below this nonzero count the parallel clean/dirty pre-pass of the kFull
/// CSR scan is not worth a fork/join; the serial scan runs directly.
constexpr std::size_t kParallelValidateMinNnz = 1u << 15;

/// rowptr must be {0, ...} non-decreasing with size() == nrows + 1; returns
/// nothing but throws `<prefix>.rowptr.{size,front,monotonic}`.
void check_rowptr(std::span<const offset_t> rowptr, index_t nrows, const std::string& prefix) {
  if (rowptr.size() != static_cast<std::size_t>(nrows) + 1) {
    fail_v(prefix + ".rowptr.size",
           "rowptr has " + std::to_string(rowptr.size()) + " entries, want nrows+1 = " +
               std::to_string(nrows + 1));
  }
  if (rowptr.front() != 0) {
    fail_v(prefix + ".rowptr.front", "rowptr[0] = " + std::to_string(rowptr.front()));
  }
  for (std::size_t i = 1; i < rowptr.size(); ++i) {
    if (rowptr[i] < rowptr[i - 1]) {
      fail_v(prefix + ".rowptr.monotonic",
             "rowptr decreases at entry " + std::to_string(i));
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// CSR
// ---------------------------------------------------------------------------

void validate_csr(const CsrArrays& a, Level effort) {
  if (effort == Level::kOff) return;
  if (a.nrows < 0 || a.ncols < 0) {
    fail_v("csr.dims", std::to_string(a.nrows) + " x " + std::to_string(a.ncols));
  }
  check_rowptr(a.rowptr, a.nrows, "csr");
  if (static_cast<std::size_t>(a.rowptr.back()) != a.colind.size() ||
      a.colind.size() != a.values_size) {
    fail_v("csr.nnz.consistency",
           "rowptr.back() = " + std::to_string(a.rowptr.back()) + ", colind " +
               std::to_string(a.colind.size()) + " entries, values " +
               std::to_string(a.values_size) + " entries");
  }
  if (effort < Level::kFull) return;
  // The O(nnz) scan runs on the CsrMatrix constructor path unconditionally,
  // so it would serialize every parallel builder that ends in a CSR. Large
  // matrices take a parallel clean/dirty pre-pass (rows are independent);
  // only when a violation exists does the serial scan below re-run to name
  // the *first* violation in row order — identical errors either way.
  const index_t nrows = a.nrows;
  if (a.colind.size() >= kParallelValidateMinNnz) {
    bool clean = true;
#pragma omp parallel for default(none) shared(a, nrows) reduction(&& : clean) schedule(static)
    for (index_t r = 0; r < nrows; ++r) {
      const auto b = static_cast<std::size_t>(a.rowptr[static_cast<std::size_t>(r)]);
      const auto e = static_cast<std::size_t>(a.rowptr[static_cast<std::size_t>(r) + 1]);
      bool ok = true;
      for (std::size_t j = b; j < e; ++j) {
        ok = ok && a.colind[j] >= 0 && a.colind[j] < a.ncols &&
             (j == b || a.colind[j] > a.colind[j - 1]);
      }
      clean = clean && ok;
    }
    if (clean) return;
  }
  for (index_t r = 0; r < nrows; ++r) {
    const auto b = static_cast<std::size_t>(a.rowptr[static_cast<std::size_t>(r)]);
    const auto e = static_cast<std::size_t>(a.rowptr[static_cast<std::size_t>(r) + 1]);
    for (std::size_t j = b; j < e; ++j) {
      if (a.colind[j] < 0 || a.colind[j] >= a.ncols) {
        fail_v("csr.colind.bounds", "row " + std::to_string(r) + " has column " +
                                        std::to_string(a.colind[j]));
      }
      if (j > b && a.colind[j] <= a.colind[j - 1]) {
        fail_v("csr.colind.sorted",
               "row " + std::to_string(r) + " columns not strictly increasing");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Delta-compressed CSR
// ---------------------------------------------------------------------------

void validate_delta(const DeltaArrays& a, Level effort) {
  if (effort == Level::kOff) return;
  if (a.nrows < 0 || a.ncols < 0) {
    fail_v("delta.dims", std::to_string(a.nrows) + " x " + std::to_string(a.ncols));
  }
  check_rowptr(a.rowptr, a.nrows, "delta");
  const auto nnz = static_cast<std::size_t>(a.rowptr.back());
  if (a.first_col.size() != static_cast<std::size_t>(a.nrows)) {
    fail_v("delta.first_col.size", std::to_string(a.first_col.size()) + " entries, want " +
                                       std::to_string(a.nrows));
  }
  // Width purity: exactly the stream matching `width` carries the nnz
  // entries; the other must be empty — 8- and 16-bit deltas never mix.
  const std::size_t active = a.width == DeltaWidth::k8 ? a.deltas8.size() : a.deltas16.size();
  const std::size_t inactive = a.width == DeltaWidth::k8 ? a.deltas16.size() : a.deltas8.size();
  if (inactive != 0) {
    fail_v("delta.width.purity", "both 8- and 16-bit delta streams populated");
  }
  if (active != nnz) {
    fail_v("delta.stream.size", "delta stream has " + std::to_string(active) +
                                    " entries, want nnz = " + std::to_string(nnz));
  }
  if (a.values_size != nnz) {
    fail_v("delta.values.size", "values have " + std::to_string(a.values_size) +
                                    " entries, want nnz = " + std::to_string(nnz));
  }
  if (effort < Level::kFull) return;
  for (index_t r = 0; r < a.nrows; ++r) {
    const auto b = static_cast<std::size_t>(a.rowptr[static_cast<std::size_t>(r)]);
    const auto e = static_cast<std::size_t>(a.rowptr[static_cast<std::size_t>(r) + 1]);
    if (b == e) continue;
    index_t col = a.first_col[static_cast<std::size_t>(r)];
    if (col < 0 || col >= a.ncols) {
      fail_v("delta.first_col.bounds",
             "row " + std::to_string(r) + " starts at column " + std::to_string(col));
    }
    // The first element's stream slot is unused (its column is absolute);
    // every later delta must be >= 1 (columns strictly increase) and the
    // reconstructed column must stay in range.
    for (std::size_t j = b + 1; j < e; ++j) {
      const index_t d = a.width == DeltaWidth::k8 ? static_cast<index_t>(a.deltas8[j])
                                                  : static_cast<index_t>(a.deltas16[j]);
      if (d < 1) {
        fail_v("delta.deltas.positive", "row " + std::to_string(r) + " has delta " +
                                            std::to_string(d) + " at nnz " + std::to_string(j));
      }
      col += d;
      if (col >= a.ncols) {
        fail_v("delta.col.bounds", "row " + std::to_string(r) +
                                       " reconstructs column " + std::to_string(col));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SELL-C-sigma
// ---------------------------------------------------------------------------

void validate_sell(const SellArrays& a, Level effort) {
  if (effort == Level::kOff) return;
  if (a.nrows < 0 || a.ncols < 0 || a.nnz < 0) {
    fail_v("sell.dims", std::to_string(a.nrows) + " x " + std::to_string(a.ncols) + ", nnz " +
                            std::to_string(a.nnz));
  }
  if (a.chunk <= 0) fail_v("sell.chunk.positive", "chunk = " + std::to_string(a.chunk));
  const auto n = static_cast<std::size_t>(a.nrows);
  if (a.perm.size() != n) {
    fail_v("sell.perm.size", std::to_string(a.perm.size()) + " entries, want nrows");
  }
  if (a.row_len.size() != n) {
    fail_v("sell.row_len.size", std::to_string(a.row_len.size()) + " entries, want nrows");
  }
  const auto nchunks = static_cast<std::size_t>((a.nrows + a.chunk - 1) / a.chunk);
  if (a.chunk_len.size() != nchunks || a.chunk_off.size() != nchunks) {
    fail_v("sell.chunks.count", "chunk_len/chunk_off sized " +
                                    std::to_string(a.chunk_len.size()) + "/" +
                                    std::to_string(a.chunk_off.size()) + ", want " +
                                    std::to_string(nchunks));
  }
  // Chunk layout: offsets are the running sum of chunk_len * chunk and the
  // padded arrays end exactly at the last chunk's end.
  offset_t off = 0;
  for (std::size_t k = 0; k < nchunks; ++k) {
    if (a.chunk_len[k] < 0) fail_v("sell.chunk_len.negative", "chunk " + std::to_string(k));
    if (a.chunk_off[k] != off) {
      fail_v("sell.chunk_off.layout",
             "chunk " + std::to_string(k) + " offset " + std::to_string(a.chunk_off[k]) +
                 ", want running sum " + std::to_string(off));
    }
    off += static_cast<offset_t>(a.chunk_len[k]) * a.chunk;
  }
  if (a.colind.size() != static_cast<std::size_t>(off) || a.colind.size() != a.values.size()) {
    fail_v("sell.storage.size", "colind/values sized " + std::to_string(a.colind.size()) + "/" +
                                    std::to_string(a.values.size()) + ", want padded nnz " +
                                    std::to_string(off));
  }
  // Row lengths fit their chunk's padded width, and the widths are tight
  // (some lane attains each width — padding is bounded by the longest row).
  offset_t len_sum = 0;
  for (std::size_t p = 0; p < n; ++p) {
    if (a.row_len[p] < 0) fail_v("sell.row_len.negative", "position " + std::to_string(p));
    len_sum += a.row_len[p];
    if (a.row_len[p] > a.chunk_len[p / static_cast<std::size_t>(a.chunk)]) {
      fail_v("sell.chunk_len.fit", "position " + std::to_string(p) + " length " +
                                       std::to_string(a.row_len[p]) + " exceeds chunk width");
    }
  }
  if (len_sum != a.nnz) {
    fail_v("sell.nnz.sum", "row lengths sum to " + std::to_string(len_sum) + ", want nnz = " +
                               std::to_string(a.nnz));
  }
  for (std::size_t k = 0; k < nchunks; ++k) {
    if (a.chunk_len[k] == 0) continue;
    index_t widest = 0;
    for (index_t lane = 0; lane < a.chunk; ++lane) {
      const auto p = k * static_cast<std::size_t>(a.chunk) + static_cast<std::size_t>(lane);
      if (p < n) widest = std::max(widest, a.row_len[p]);
    }
    if (widest != a.chunk_len[k]) {
      fail_v("sell.chunk_len.tight", "chunk " + std::to_string(k) + " padded to " +
                                         std::to_string(a.chunk_len[k]) +
                                         " but longest row has " + std::to_string(widest));
    }
  }
  if (effort < Level::kFull) return;
  // Permutation bijectivity: perm maps sorted positions onto [0, nrows)
  // exactly once — a corrupted permutation silently drops/duplicates rows.
  std::vector<bool> seen(n, false);
  for (std::size_t p = 0; p < n; ++p) {
    const index_t row = a.perm[p];
    if (row < 0 || row >= a.nrows) {
      fail_v("sell.perm.bounds", "position " + std::to_string(p) + " maps to row " +
                                     std::to_string(row));
    }
    if (seen[static_cast<std::size_t>(row)]) {
      fail_v("sell.perm.bijection", "row " + std::to_string(row) + " appears twice");
    }
    seen[static_cast<std::size_t>(row)] = true;
  }
  // Column bounds on live lanes; padding lanes must carry colind 0 / value 0.
  for (std::size_t k = 0; k < nchunks; ++k) {
    for (index_t lane = 0; lane < a.chunk; ++lane) {
      const auto p = k * static_cast<std::size_t>(a.chunk) + static_cast<std::size_t>(lane);
      const index_t len = p < n ? a.row_len[p] : 0;
      for (index_t j = 0; j < a.chunk_len[k]; ++j) {
        const auto src = static_cast<std::size_t>(a.chunk_off[k]) +
                         static_cast<std::size_t>(j) * static_cast<std::size_t>(a.chunk) +
                         static_cast<std::size_t>(lane);
        if (j < len) {
          if (a.colind[src] < 0 || a.colind[src] >= a.ncols) {
            fail_v("sell.colind.bounds", "chunk " + std::to_string(k) + " lane " +
                                             std::to_string(lane) + " has column " +
                                             std::to_string(a.colind[src]));
          }
        } else if (a.colind[src] != 0 || a.values[src] != 0.0) {
          fail_v("sell.padding.zero", "chunk " + std::to_string(k) + " lane " +
                                          std::to_string(lane) + " padding slot " +
                                          std::to_string(j) + " not zeroed");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// BCSR
// ---------------------------------------------------------------------------

void validate_bcsr(const BcsrArrays& a, Level effort) {
  if (effort == Level::kOff) return;
  if (a.nrows < 0 || a.ncols < 0 || a.nnz < 0) {
    fail_v("bcsr.dims", std::to_string(a.nrows) + " x " + std::to_string(a.ncols) + ", nnz " +
                            std::to_string(a.nnz));
  }
  if (a.r <= 0 || a.c <= 0) {
    fail_v("bcsr.block_dims", std::to_string(a.r) + " x " + std::to_string(a.c));
  }
  const index_t nblock_rows = (a.nrows + a.r - 1) / a.r;
  check_rowptr(a.block_rowptr, nblock_rows, "bcsr.block");
  const auto nblocks = static_cast<std::size_t>(a.block_rowptr.back());
  if (a.block_colind.size() != nblocks) {
    fail_v("bcsr.colind.size", std::to_string(a.block_colind.size()) + " entries, want " +
                                   std::to_string(nblocks));
  }
  const std::size_t slots =
      nblocks * static_cast<std::size_t>(a.r) * static_cast<std::size_t>(a.c);
  if (a.values.size() != slots) {
    fail_v("bcsr.values.size", std::to_string(a.values.size()) + " entries, want blocks*r*c = " +
                                   std::to_string(slots));
  }
  if (static_cast<std::size_t>(a.nnz) > slots) {
    fail_v("bcsr.nnz.accounting", "nnz " + std::to_string(a.nnz) + " exceeds stored slots " +
                                      std::to_string(slots));
  }
  if (effort < Level::kFull) return;
  const index_t nblock_cols = a.c > 0 ? (a.ncols + a.c - 1) / a.c : 0;
  for (index_t br = 0; br < nblock_rows; ++br) {
    for (offset_t k = a.block_rowptr[static_cast<std::size_t>(br)];
         k < a.block_rowptr[static_cast<std::size_t>(br) + 1]; ++k) {
      const index_t bc = a.block_colind[static_cast<std::size_t>(k)];
      if (bc < 0 || bc >= nblock_cols) {
        fail_v("bcsr.colind.bounds",
               "block row " + std::to_string(br) + " has block column " + std::to_string(bc));
      }
      if (k > a.block_rowptr[static_cast<std::size_t>(br)] &&
          bc <= a.block_colind[static_cast<std::size_t>(k) - 1]) {
        fail_v("bcsr.colind.sorted",
               "block row " + std::to_string(br) + " block columns not strictly increasing");
      }
      // Slots that fall outside the matrix (edge blocks) must be padding
      // zeros — a nonzero there would be phantom data to_csr() drops or,
      // worse, a kernel reads.
      for (index_t i = 0; i < a.r; ++i) {
        for (index_t j = 0; j < a.c; ++j) {
          const bool outside = br * a.r + i >= a.nrows || bc * a.c + j >= a.ncols;
          if (!outside) continue;
          const auto slot = static_cast<std::size_t>(k) * static_cast<std::size_t>(a.r) *
                                static_cast<std::size_t>(a.c) +
                            static_cast<std::size_t>(i) * static_cast<std::size_t>(a.c) +
                            static_cast<std::size_t>(j);
          if (a.values[slot] != 0.0) {
            fail_v("bcsr.padding.zero", "block " + std::to_string(k) +
                                            " has nonzero payload outside the matrix");
          }
        }
      }
    }
  }
  // Every stored nonzero must account for a source nonzero.
  offset_t stored_nonzeros = 0;
  for (value_t v : a.values) {
    if (v != 0.0) ++stored_nonzeros;
  }
  if (stored_nonzeros > a.nnz) {
    fail_v("bcsr.nnz.accounting", std::to_string(stored_nonzeros) +
                                      " nonzero payload entries exceed source nnz " +
                                      std::to_string(a.nnz));
  }
}

// ---------------------------------------------------------------------------
// Long-row decomposition
// ---------------------------------------------------------------------------

void validate_decomposed(const DecomposedArrays& a, Level effort) {
  if (effort == Level::kOff) return;
  if (a.short_part == nullptr) fail_v("decomp.short.missing", "no short part");
  if (a.threshold <= 0) fail_v("decomp.threshold", std::to_string(a.threshold));
  const index_t nrows = a.short_part->nrows();
  if (a.long_rowptr.size() != a.long_rows.size() + 1) {
    fail_v("decomp.long_rowptr.size", std::to_string(a.long_rowptr.size()) + " entries, want " +
                                          std::to_string(a.long_rows.size() + 1));
  }
  if (a.long_rowptr.front() != 0) {
    fail_v("decomp.long_rowptr.front", std::to_string(a.long_rowptr.front()));
  }
  for (std::size_t k = 0; k < a.long_rows.size(); ++k) {
    const index_t row = a.long_rows[k];
    if (row < 0 || row >= nrows) {
      fail_v("decomp.long_rows.bounds", "long row " + std::to_string(row));
    }
    if (k > 0 && row <= a.long_rows[k - 1]) {
      fail_v("decomp.long_rows.sorted", "long rows not strictly ascending at entry " +
                                            std::to_string(k));
    }
    if (a.long_rowptr[k + 1] < a.long_rowptr[k]) {
      fail_v("decomp.long_rowptr.monotonic", "decreases at entry " + std::to_string(k + 1));
    }
    // A long row must actually be long — and its row in the short part must
    // have been emptied, else its nonzeros are counted twice.
    if (a.long_rowptr[k + 1] - a.long_rowptr[k] <= a.threshold) {
      fail_v("decomp.long.threshold",
             "long row " + std::to_string(row) + " has only " +
                 std::to_string(a.long_rowptr[k + 1] - a.long_rowptr[k]) + " nonzeros");
    }
    if (a.short_part->row_nnz(row) != 0) {
      fail_v("decomp.short.emptied",
             "row " + std::to_string(row) + " present in both parts");
    }
  }
  if (static_cast<std::size_t>(a.long_rowptr.back()) != a.long_colind.size() ||
      a.long_colind.size() != a.long_values_size) {
    fail_v("decomp.nnz.consistency",
           "long_rowptr.back() = " + std::to_string(a.long_rowptr.back()) + ", colind " +
               std::to_string(a.long_colind.size()) + " entries, values " +
               std::to_string(a.long_values_size) + " entries");
  }
  if (effort < Level::kFull) return;
  const index_t ncols = a.short_part->ncols();
  for (std::size_t k = 0; k < a.long_rows.size(); ++k) {
    const auto b = static_cast<std::size_t>(a.long_rowptr[k]);
    const auto e = static_cast<std::size_t>(a.long_rowptr[k + 1]);
    for (std::size_t j = b; j < e; ++j) {
      if (a.long_colind[j] < 0 || a.long_colind[j] >= ncols) {
        fail_v("decomp.colind.bounds", "long row " + std::to_string(a.long_rows[k]) +
                                           " has column " + std::to_string(a.long_colind[j]));
      }
      if (j > b && a.long_colind[j] <= a.long_colind[j - 1]) {
        fail_v("decomp.colind.sorted", "long row " + std::to_string(a.long_rows[k]) +
                                           " columns not strictly increasing");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SymCsr (strict lower triangle + dense diagonal)
// ---------------------------------------------------------------------------

void validate_sym(const SymArrays& a, Level effort) {
  if (effort == Level::kOff) return;
  if (a.nrows < 0) fail_v("symcsr.dims", std::to_string(a.nrows) + " rows");
  check_rowptr(a.rowptr, a.nrows, "symcsr");
  if (static_cast<std::size_t>(a.rowptr.back()) != a.colind.size() ||
      a.colind.size() != a.values_size) {
    fail_v("symcsr.nnz.consistency",
           "rowptr.back() = " + std::to_string(a.rowptr.back()) + ", colind " +
               std::to_string(a.colind.size()) + " entries, values " +
               std::to_string(a.values_size) + " entries");
  }
  if (a.diag.size() != static_cast<std::size_t>(a.nrows) ||
      a.diag_present.size() != static_cast<std::size_t>(a.nrows)) {
    fail_v("symcsr.diag.size", "diag has " + std::to_string(a.diag.size()) +
                                   " entries, presence " +
                                   std::to_string(a.diag_present.size()) + ", want nrows = " +
                                   std::to_string(a.nrows));
  }
  // Mirror-nnz conservation: the stored lower triangle mirrors once, the
  // stored diagonal entries once, and together they must account for every
  // source nonzero (the O(rows) presence scan is cheap enough for kCheap).
  offset_t diag_stored = 0;
  for (std::size_t i = 0; i < a.diag_present.size(); ++i) {
    if (a.diag_present[i] > 1) {
      fail_v("symcsr.diag.flag", "row " + std::to_string(i) + " has presence flag " +
                                     std::to_string(a.diag_present[i]));
    }
    diag_stored += a.diag_present[i];
  }
  if (2 * a.rowptr.back() + diag_stored != a.source_nnz) {
    fail_v("symcsr.nnz.conservation",
           "2 * " + std::to_string(a.rowptr.back()) + " lower + " +
               std::to_string(diag_stored) + " diagonal entries, source has " +
               std::to_string(a.source_nnz));
  }
  if (effort < Level::kFull) return;
  for (index_t r = 0; r < a.nrows; ++r) {
    // Absent diagonal entries must read as an exact additive zero.
    if (a.diag_present[static_cast<std::size_t>(r)] == 0 &&
        a.diag[static_cast<std::size_t>(r)] != 0.0) {
      fail_v("symcsr.diag.zero",
             "row " + std::to_string(r) + " has no stored diagonal but nonzero fill");
    }
    const auto b = static_cast<std::size_t>(a.rowptr[static_cast<std::size_t>(r)]);
    const auto e = static_cast<std::size_t>(a.rowptr[static_cast<std::size_t>(r) + 1]);
    for (std::size_t j = b; j < e; ++j) {
      // Triangle purity: every stored index is strictly below the diagonal.
      if (a.colind[j] < 0 || a.colind[j] >= r) {
        fail_v("symcsr.triangle.purity", "row " + std::to_string(r) + " stores column " +
                                             std::to_string(a.colind[j]));
      }
      if (j > b && a.colind[j] <= a.colind[j - 1]) {
        fail_v("symcsr.colind.sorted",
               "row " + std::to_string(r) + " columns not strictly increasing");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Row partitions
// ---------------------------------------------------------------------------

void validate_partition(std::span<const RowRange> parts, index_t nrows, Level effort) {
  if (effort == Level::kOff) return;
  if (nrows < 0) fail_v("partition.nrows", std::to_string(nrows));
  if (parts.empty()) fail_v("partition.empty", "no ranges");
  if (parts.front().begin != 0) {
    fail_v("partition.start", "first range begins at " + std::to_string(parts.front().begin));
  }
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].begin > parts[i].end) {
      fail_v("partition.inverted", "range " + std::to_string(i) + " is [" +
                                       std::to_string(parts[i].begin) + ", " +
                                       std::to_string(parts[i].end) + ")");
    }
    if (i > 0 && parts[i].begin != parts[i - 1].end) {
      fail_v("partition.contiguity", "gap or overlap between ranges " + std::to_string(i - 1) +
                                         " and " + std::to_string(i));
    }
  }
  if (parts.back().end != nrows) {
    fail_v("partition.end",
           "last range ends at " + std::to_string(parts.back().end) + ", want nrows = " +
               std::to_string(nrows));
  }
}

// ---------------------------------------------------------------------------
// Object-level adapters
// ---------------------------------------------------------------------------

void validate(const CsrMatrix& m, Level effort) {
  validate_csr({m.nrows(), m.ncols(), m.rowptr(), m.colind(), m.values().size()}, effort);
}

void validate(const DeltaCsrMatrix& m, Level effort) {
  validate_delta({m.nrows(), m.ncols(), m.width(), m.rowptr(), m.first_col(), m.deltas8(),
                  m.deltas16(), m.values().size()},
                 effort);
}

void validate(const SellMatrix& m, Level effort) {
  SellArrays a;
  a.nrows = m.nrows();
  a.ncols = m.ncols();
  a.chunk = m.chunk_rows();
  a.nnz = m.nnz();
  a.colind = m.colind();
  a.values = m.values();
  // The accessors expose the descriptors element-wise; gather them into
  // contiguous spans for the arrays-level validator.
  const auto nchunks = static_cast<std::size_t>(m.nchunks());
  const auto n = static_cast<std::size_t>(m.nrows());
  std::vector<index_t> perm(n), row_len(n), chunk_len(nchunks);
  std::vector<offset_t> chunk_off(nchunks);
  for (std::size_t p = 0; p < n; ++p) {
    perm[p] = m.row_of(static_cast<index_t>(p));
    row_len[p] = m.row_len(static_cast<index_t>(p));
  }
  for (std::size_t k = 0; k < nchunks; ++k) {
    chunk_len[k] = m.chunk_len(static_cast<index_t>(k));
    chunk_off[k] = m.chunk_offset(static_cast<index_t>(k));
  }
  a.perm = perm;
  a.row_len = row_len;
  a.chunk_len = chunk_len;
  a.chunk_off = chunk_off;
  validate_sell(a, effort);
}

void validate(const BcsrMatrix& m, Level effort) {
  validate_bcsr({m.nrows(), m.ncols(), m.block_rows(), m.block_cols(), m.nnz(),
                 m.block_rowptr(), m.block_colind(), m.values()},
                effort);
}

void validate(const DecomposedCsrMatrix& m, Level effort) {
  validate_decomposed({&m.short_part(), m.threshold(), m.long_rows(), m.long_rowptr(),
                       m.long_colind(), m.long_values().size()},
                      effort);
}

void validate(const DecomposedCsrMatrix& m, const CsrMatrix& source, Level effort) {
  if (effort == Level::kOff) return;
  validate(m, effort);
  if (m.nrows() != source.nrows() || m.ncols() != source.ncols()) {
    fail_v("decomp.source.dims", "decomposition is " + std::to_string(m.nrows()) + " x " +
                                     std::to_string(m.ncols()) + ", source " +
                                     std::to_string(source.nrows()) + " x " +
                                     std::to_string(source.ncols()));
  }
  // The split must partition the nonzeros exactly: nothing dropped, nothing
  // double-counted.
  if (m.nnz() != source.nnz()) {
    fail_v("decomp.nnz.conservation", "short + long = " + std::to_string(m.nnz()) +
                                          " nonzeros, source has " +
                                          std::to_string(source.nnz()));
  }
  if (effort < Level::kFull) return;
  // Row-exact conservation: every long row's stream equals the source row,
  // and every other row survives untouched in the short part.
  const auto long_rows = m.long_rows();
  const auto long_rowptr = m.long_rowptr();
  const auto long_colind = m.long_colind();
  std::size_t next_long = 0;
  for (index_t r = 0; r < source.nrows(); ++r) {
    const auto src_cols = source.row_cols(r);
    if (next_long < long_rows.size() && long_rows[next_long] == r) {
      const auto b = static_cast<std::size_t>(long_rowptr[next_long]);
      const auto e = static_cast<std::size_t>(long_rowptr[next_long + 1]);
      const bool equal = e - b == src_cols.size() &&
                         std::equal(src_cols.begin(), src_cols.end(), long_colind.begin() +
                                                                          static_cast<std::ptrdiff_t>(b));
      if (!equal) {
        fail_v("decomp.source.rows",
               "long row " + std::to_string(r) + " differs from the source row");
      }
      ++next_long;
    } else {
      const auto short_cols = m.short_part().row_cols(r);
      if (short_cols.size() != src_cols.size() ||
          !std::equal(src_cols.begin(), src_cols.end(), short_cols.begin())) {
        fail_v("decomp.source.rows",
               "short row " + std::to_string(r) + " differs from the source row");
      }
    }
  }
}

void validate(const SymCsrMatrix& m, Level effort) {
  validate_sym({m.nrows(), m.nnz(), m.rowptr(), m.colind(), m.values().size(), m.diag(),
                m.diag_present()},
               effort);
}

void validate(const SymCsrMatrix& m, const CsrMatrix& source, Level effort) {
  if (effort == Level::kOff) return;
  validate(m, effort);
  if (m.nrows() != source.nrows() || source.nrows() != source.ncols()) {
    fail_v("symcsr.source.dims", "symmetric storage is " + std::to_string(m.nrows()) +
                                     " rows, source " + std::to_string(source.nrows()) +
                                     " x " + std::to_string(source.ncols()));
  }
  // validate_sym already proved 2 * lower + diagonals == m.nnz(); tying
  // m.nnz() to the source closes the mirror-nnz conservation argument.
  if (m.nnz() != source.nnz()) {
    fail_v("symcsr.nnz.source", "storage claims " + std::to_string(m.nnz()) +
                                    " source nonzeros, source has " +
                                    std::to_string(source.nnz()));
  }
}

void validate(std::span<const RowRange> parts, index_t nrows, Level effort) {
  validate_partition(parts, nrows, effort);
}

}  // namespace sparta::check
