#include "check/validate_tuner.hpp"

#include <string>

#include "check/validate.hpp"
#include "tuner/optimizations.hpp"

namespace sparta::check {

namespace {

[[noreturn]] void fail_v(std::string violation, const std::string& detail) {
  throw ValidationError{std::move(violation), detail};
}

}  // namespace

void validate(const OptimizationPlan& plan, Level effort) {
  if (effort == Level::kOff) return;
  if (plan.strategy.empty()) fail_v("plan.strategy", "empty strategy tag");
  // The optimization list is kept in canonical enum order with no
  // duplicates (select_optimizations and the sweep sets both emit it so).
  for (std::size_t i = 0; i < plan.optimizations.size(); ++i) {
    const auto o = static_cast<int>(plan.optimizations[i]);
    if (o < 0 || o >= kNumOptimizations) {
      fail_v("plan.optimizations.range", "unknown optimization id " + std::to_string(o));
    }
    if (i > 0 && plan.optimizations[i] <= plan.optimizations[i - 1]) {
      fail_v("plan.optimizations.order", "optimizations not in canonical order");
    }
  }
  // The composed config must be exactly what the optimization list implies —
  // a mismatch means the plan would run a different kernel than it reports.
  // The symmetric-storage bit is the one field the optimization pool does
  // not own (the planner sets it orthogonally for symmetric matrices), so
  // it is carried over before the comparison — but never next to the
  // rewrites it is exclusive with.
  kernels::KernelConfig expected = config_for(plan.optimizations);
  expected.symmetric = plan.config.symmetric;
  if (plan.config.symmetric &&
      (plan.config.delta || plan.config.decomposed ||
       plan.config.schedule == kernels::Schedule::kDynamicChunks)) {
    fail_v("plan.config.symmetric.exclusive",
           "symmetric storage combined with delta/decomposed/dynamic in '" +
               plan.config.describe() + "'");
  }
  if (expected != plan.config) {
    fail_v("plan.config.consistency",
           "config '" + plan.config.describe() + "' does not match optimizations '" +
               to_string(plan.optimizations) + "'");
  }
  if (!(plan.gflops >= 0.0)) {
    fail_v("plan.gflops", "negative or NaN rate " + std::to_string(plan.gflops));
  }
  if (!(plan.t_spmv_seconds >= 0.0) || !(plan.t_pre_seconds >= 0.0)) {
    fail_v("plan.times", "negative or NaN t_spmv/t_pre");
  }
}

}  // namespace sparta::check
