// Structural validators for every rewritten matrix format and for the
// per-thread row partitions — the format-invariant half of sparta::check.
//
// Each format gets two surfaces:
//
//  - an *arrays* overload taking a lightweight view struct of the raw
//    storage. This is the real validator: tests (and the corruption fuzzer)
//    can flip one field of a view and prove the validator names the
//    violation, without ever constructing an invalid object;
//  - an *object* overload (`validate(const CsrMatrix&)`, ...) that adapts a
//    live instance onto its view — the form the constructor/tuner wiring
//    (SPARTA_CHECK_STRUCTURE) uses.
//
// Every check throws ValidationError carrying a stable dotted violation
// name such as "delta.width.purity" or "partition.contiguity". The `effort`
// argument bounds the work: kCheap runs the O(rows) subset (sizes, fronts,
// monotonicity, descriptor consistency), kFull adds the O(nnz) scans
// (column bounds and ordering, delta reconstruction, SELL padding and
// permutation bijectivity, BCSR payload accounting). kOff returns
// immediately — callers wire the build level through unconditionally.
//
// Validator guarantees are tabulated in DESIGN.md §11.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "check/contract.hpp"
#include "common/types.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/csr.hpp"
#include "sparse/decomposed_csr.hpp"
#include "sparse/delta_csr.hpp"
#include "sparse/partition.hpp"
#include "sparse/sell.hpp"
#include "sparse/sym_csr.hpp"

namespace sparta::check {

/// Bad structural data. Derives from std::invalid_argument so pre-existing
/// catch sites (e.g. around CsrMatrix::validate) keep working.
class ValidationError : public std::invalid_argument {
 public:
  ValidationError(std::string violation, const std::string& detail);

  /// Stable dotted name of the violated invariant, e.g. "csr.rowptr.front".
  [[nodiscard]] const std::string& violation() const noexcept { return violation_; }

 private:
  std::string violation_;
};

// ---------------------------------------------------------------------------
// Raw-array views (the corruptible surface the fuzz tests exercise).
// ---------------------------------------------------------------------------

struct CsrArrays {
  index_t nrows = 0;
  index_t ncols = 0;
  std::span<const offset_t> rowptr;
  std::span<const index_t> colind;
  std::size_t values_size = 0;
};

struct DeltaArrays {
  index_t nrows = 0;
  index_t ncols = 0;
  DeltaWidth width = DeltaWidth::k8;
  std::span<const offset_t> rowptr;
  std::span<const index_t> first_col;
  std::span<const std::uint8_t> deltas8;
  std::span<const std::uint16_t> deltas16;
  std::size_t values_size = 0;
};

struct SellArrays {
  index_t nrows = 0;
  index_t ncols = 0;
  index_t chunk = 0;
  offset_t nnz = 0;
  std::span<const index_t> perm;
  std::span<const index_t> row_len;
  std::span<const index_t> chunk_len;
  std::span<const offset_t> chunk_off;
  std::span<const index_t> colind;
  std::span<const value_t> values;
};

struct BcsrArrays {
  index_t nrows = 0;
  index_t ncols = 0;
  index_t r = 0;
  index_t c = 0;
  offset_t nnz = 0;
  std::span<const offset_t> block_rowptr;
  std::span<const index_t> block_colind;
  std::span<const value_t> values;
};

struct SymArrays {
  index_t nrows = 0;
  /// Nonzeros of the source matrix the storage claims to represent
  /// (mirror-nnz conservation: 2 * lower + stored diagonals must equal it).
  offset_t source_nnz = 0;
  std::span<const offset_t> rowptr;
  std::span<const index_t> colind;
  std::size_t values_size = 0;
  std::span<const value_t> diag;
  std::span<const std::uint8_t> diag_present;
};

struct DecomposedArrays {
  /// The short part is a full CsrMatrix and validates through its own
  /// arrays view; here it contributes its row-emptiness contract.
  const CsrMatrix* short_part = nullptr;
  index_t threshold = 0;
  std::span<const index_t> long_rows;
  std::span<const offset_t> long_rowptr;
  std::span<const index_t> long_colind;
  std::size_t long_values_size = 0;
};

// ---------------------------------------------------------------------------
// Arrays-level validators.
// ---------------------------------------------------------------------------

void validate_csr(const CsrArrays& a, Level effort = Level::kFull);
void validate_delta(const DeltaArrays& a, Level effort = Level::kFull);
void validate_sell(const SellArrays& a, Level effort = Level::kFull);
void validate_bcsr(const BcsrArrays& a, Level effort = Level::kFull);
void validate_decomposed(const DecomposedArrays& a, Level effort = Level::kFull);
void validate_sym(const SymArrays& a, Level effort = Level::kFull);
/// Ordered exact cover of [0, nrows).
void validate_partition(std::span<const RowRange> parts, index_t nrows,
                        Level effort = Level::kFull);

// ---------------------------------------------------------------------------
// Object-level adapters (the SPARTA_CHECK_STRUCTURE surface).
// ---------------------------------------------------------------------------

void validate(const CsrMatrix& m, Level effort = Level::kFull);
void validate(const DeltaCsrMatrix& m, Level effort = Level::kFull);
void validate(const SellMatrix& m, Level effort = Level::kFull);
void validate(const BcsrMatrix& m, Level effort = Level::kFull);
void validate(const DecomposedCsrMatrix& m, Level effort = Level::kFull);
/// Additionally proves nnz conservation against the matrix that was
/// decomposed (the split must partition the nonzeros exactly).
void validate(const DecomposedCsrMatrix& m, const CsrMatrix& source,
              Level effort = Level::kFull);
void validate(const SymCsrMatrix& m, Level effort = Level::kFull);
/// Additionally proves mirror-nnz conservation and shape agreement against
/// the symmetric matrix that was compressed.
void validate(const SymCsrMatrix& m, const CsrMatrix& source, Level effort = Level::kFull);
void validate(std::span<const RowRange> parts, index_t nrows, Level effort = Level::kFull);

// View-level members of the same overload set, so SPARTA_CHECK_STRUCTURE
// also accepts a raw-arrays view (the corruption tests use this).
inline void validate(const CsrArrays& a, Level effort = Level::kFull) {
  validate_csr(a, effort);
}
inline void validate(const DeltaArrays& a, Level effort = Level::kFull) {
  validate_delta(a, effort);
}
inline void validate(const SellArrays& a, Level effort = Level::kFull) {
  validate_sell(a, effort);
}
inline void validate(const BcsrArrays& a, Level effort = Level::kFull) {
  validate_bcsr(a, effort);
}
inline void validate(const DecomposedArrays& a, Level effort = Level::kFull) {
  validate_decomposed(a, effort);
}
inline void validate(const SymArrays& a, Level effort = Level::kFull) {
  validate_sym(a, effort);
}

}  // namespace sparta::check
