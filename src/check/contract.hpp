// sparta::check — contract macros and the compile-time check level.
//
// The optimizer rewrites matrix structure aggressively (delta-compressed
// index streams, long-row decomposition, SELL chunk padding, per-thread row
// partitions) and the solver engine runs all of it inside one persistent
// OpenMP region — the exact shape where silent structural corruption becomes
// a wrong answer instead of a crash. This layer makes the structural
// contracts executable:
//
//   SPARTA_REQUIRE(cond, msg)  precondition / cheap invariant; active at
//                              check level cheap and full
//   SPARTA_ASSERT(cond, msg)   expensive internal invariant (O(nnz) scans);
//                              active at level full only
//   SPARTA_CHECK_STRUCTURE(x)  run the structural validator for x
//                              (check/validate.hpp) at the effort the build
//                              level selects: nothing at off, the O(rows)
//                              subset at cheap, everything at full
//
// The level is fixed at compile time by the SPARTA_CHECK_LEVEL preprocessor
// define (0 = off, 1 = cheap, 2 = full), driven by the CMake cache variable
// of the same name. Release-family builds default to off, and the off
// expansion is a true no-op: the condition is only an unevaluated operand of
// sizeof, so it is name-checked but never executed and no code is emitted —
// mirroring the obs no-op pattern, with the emptiness of the off-mode state
// enforced by static_asserts below.
//
// Contract failures throw check::ContractViolation (a std::logic_error):
// they are programming errors, unlike check::ValidationError (bad input
// data, a std::invalid_argument — see validate.hpp).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

#ifndef SPARTA_CHECK_LEVEL
#define SPARTA_CHECK_LEVEL 0
#endif

static_assert(SPARTA_CHECK_LEVEL >= 0 && SPARTA_CHECK_LEVEL <= 2,
              "SPARTA_CHECK_LEVEL must be 0 (off), 1 (cheap) or 2 (full)");

namespace sparta::check {

/// How much verification a build (or one validate() call) performs.
enum class Level : int {
  kOff = 0,    // no checks at all
  kCheap = 1,  // O(rows) structural subset: sizes, bounds, monotonicity
  kFull = 2,   // everything, including O(nnz) scans
};

/// The level this translation unit was compiled at.
inline constexpr Level kLevel = static_cast<Level>(SPARTA_CHECK_LEVEL);

std::string_view to_string(Level l);

/// Thrown by a failed SPARTA_REQUIRE / SPARTA_ASSERT.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* msg, const char* file,
                    long line);
};

/// Throw a ContractViolation describing the failed condition.
[[noreturn]] void fail(const char* kind, const char* expr, const char* msg, const char* file,
                       long line);

#if SPARTA_CHECK_LEVEL >= 1

namespace detail {
/// Bump the process-wide evaluation counter; returns true so it can sit on
/// the left of && inside an expression macro.
bool count_evaluation() noexcept;
}  // namespace detail

/// Number of contract conditions evaluated since process start. Lets tests
/// prove the wiring fires in checked builds — and that it compiles out in
/// off builds, where this is a constant 0.
std::uint64_t evaluations() noexcept;

#else  // SPARTA_CHECK_LEVEL == 0: compile-time-checked no-op path.

constexpr std::uint64_t evaluations() noexcept { return 0; }

namespace detail {

/// The off-mode contract state: an empty tag with no-op hooks. Exists only
/// to static_assert the no-op guarantee the same way obs does for its
/// disabled handles.
struct NoopContractState {
  constexpr bool count_evaluation() const noexcept { return true; }
};

static_assert(std::is_empty_v<NoopContractState>,
              "off-mode contract state must carry no state");
static_assert(noexcept(NoopContractState{}.count_evaluation()),
              "off-mode contract hooks must be no-ops");

}  // namespace detail

#endif  // SPARTA_CHECK_LEVEL

}  // namespace sparta::check

// Discarded expansion: the condition and message are operands of sizeof, so
// they stay syntax- and name-checked but are never evaluated and emit no
// code. (sizeof of an expression is an unevaluated context by [expr.sizeof].)
#define SPARTA_CHECK_DISCARD_(cond, msg) \
  ((void)sizeof((cond) ? 1 : 0), (void)sizeof(msg))

#if SPARTA_CHECK_LEVEL >= 1
#define SPARTA_REQUIRE(cond, msg)                                          \
  ((::sparta::check::detail::count_evaluation() && (cond))                 \
       ? (void)0                                                           \
       : ::sparta::check::fail("SPARTA_REQUIRE", #cond, (msg), __FILE__, __LINE__))
#else
#define SPARTA_REQUIRE(cond, msg) SPARTA_CHECK_DISCARD_(cond, msg)
#endif

#if SPARTA_CHECK_LEVEL >= 2
#define SPARTA_ASSERT(cond, msg)                                           \
  ((::sparta::check::detail::count_evaluation() && (cond))                 \
       ? (void)0                                                           \
       : ::sparta::check::fail("SPARTA_ASSERT", #cond, (msg), __FILE__, __LINE__))
#else
#define SPARTA_ASSERT(cond, msg) SPARTA_CHECK_DISCARD_(cond, msg)
#endif

// Structural-validator wiring (overload set in check/validate.hpp /
// check/validate_tuner.hpp). Variadic so multi-argument validators
// (partitions, decomposition-vs-source) wire the same way.
#if SPARTA_CHECK_LEVEL == 0
#define SPARTA_CHECK_STRUCTURE(...) ((void)sizeof(0, __VA_ARGS__))
#elif SPARTA_CHECK_LEVEL == 1
#define SPARTA_CHECK_STRUCTURE(...) \
  (::sparta::check::validate(__VA_ARGS__, ::sparta::check::Level::kCheap))
#else
#define SPARTA_CHECK_STRUCTURE(...) \
  (::sparta::check::validate(__VA_ARGS__, ::sparta::check::Level::kFull))
#endif
