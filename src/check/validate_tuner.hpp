// Plan-level contract checks — the tuner half of sparta::check.
//
// An OptimizationPlan couples three representations of the same decision
// (the optimization list, the composed KernelConfig, and the class set) plus
// the timing model outputs. A plan whose config disagrees with its
// optimization list silently runs the wrong kernel; these checks pin the
// coupling. Kept apart from validate.hpp so the sparse formats do not pull
// tuner headers into their translation units.
#pragma once

#include "check/contract.hpp"
#include "tuner/optimizer.hpp"

namespace sparta::check {

/// Consistency of one tuner decision. kCheap and kFull are identical here —
/// every check is O(#optimizations).
void validate(const OptimizationPlan& plan, Level effort = Level::kFull);

}  // namespace sparta::check
