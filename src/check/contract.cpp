#include "check/contract.hpp"

#if SPARTA_CHECK_LEVEL >= 1
#include <atomic>
#endif

namespace sparta::check {

std::string_view to_string(Level l) {
  switch (l) {
    case Level::kOff:
      return "off";
    case Level::kCheap:
      return "cheap";
    case Level::kFull:
      return "full";
  }
  return "?";
}

namespace {

std::string format_violation(const char* kind, const char* expr, const char* msg,
                             const char* file, long line) {
  std::string s{kind};
  s += " failed: ";
  s += msg;
  s += " [";
  s += expr;
  s += "] at ";
  s += file;
  s += ":";
  s += std::to_string(line);
  return s;
}

}  // namespace

ContractViolation::ContractViolation(const char* kind, const char* expr, const char* msg,
                                     const char* file, long line)
    : std::logic_error(format_violation(kind, expr, msg, file, line)) {}

void fail(const char* kind, const char* expr, const char* msg, const char* file, long line) {
  throw ContractViolation{kind, expr, msg, file, line};
}

#if SPARTA_CHECK_LEVEL >= 1

namespace {
std::atomic<std::uint64_t> g_evaluations{0};
}  // namespace

namespace detail {
bool count_evaluation() noexcept {
  g_evaluations.fetch_add(1, std::memory_order_relaxed);
  return true;
}
}  // namespace detail

std::uint64_t evaluations() noexcept {
  return g_evaluations.load(std::memory_order_relaxed);
}

#endif  // SPARTA_CHECK_LEVEL >= 1

}  // namespace sparta::check
