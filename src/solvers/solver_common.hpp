// Shared pieces of the iterative solvers: the SpMV callback type and the
// result record. Solvers take any SpMV implementation (baseline kernel, a
// PreparedSpmv from the tuner, the vendor kernel), which is how the
// amortization experiments plug optimized kernels into the solver loop.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace sparta::solvers {

/// y = A * x callback.
using SpmvFn = std::function<void(std::span<const value_t>, std::span<value_t>)>;

/// Default SpMV: the serial reference kernel on the given matrix.
SpmvFn reference_spmv(const CsrMatrix& a);

/// Convergence report.
struct SolveResult {
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
  /// Total wall seconds and the share spent inside SpMV (for the
  /// amortization analysis, which assumes t_other is SpMV-independent).
  double seconds = 0.0;
  double spmv_seconds = 0.0;
  /// Per-iteration series (||r|| after each iteration; wall seconds per
  /// iteration). Collected only while telemetry is enabled (obs::enabled())
  /// — empty otherwise, so the hot solver loop never allocates by default.
  std::vector<double> residual_history;
  std::vector<double> iter_seconds;
};

// Small dense-vector helpers used by the solvers (serial; the vectors are
// tiny compared to the SpMV work).
double dot(std::span<const value_t> a, std::span<const value_t> b);
double norm2(std::span<const value_t> a);
/// y += alpha * x
void axpy(value_t alpha, std::span<const value_t> x, std::span<value_t> y);
/// y = x + beta * y
void xpby(std::span<const value_t> x, value_t beta, std::span<value_t> y);

}  // namespace sparta::solvers
