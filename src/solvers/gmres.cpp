#include "solvers/gmres.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/timer.hpp"

namespace sparta::solvers {

SolveResult gmres(const CsrMatrix& a, std::span<const value_t> b, std::span<value_t> x,
                  const GmresOptions& options, const SpmvFn* spmv) {
  if (a.nrows() != a.ncols()) throw std::invalid_argument{"gmres: matrix must be square"};
  const auto n = static_cast<std::size_t>(a.nrows());
  if (b.size() != n || x.size() != n) throw std::invalid_argument{"gmres: vector size mismatch"};
  const int m = options.restart;
  if (m <= 0) throw std::invalid_argument{"gmres: restart must be positive"};

  const SpmvFn default_spmv = reference_spmv(a);
  const SpmvFn& mv = spmv != nullptr ? *spmv : default_spmv;

  SolveResult result;
  Timer total;
  Timer spmv_timer;

  const double b_norm = norm2(b);
  const double threshold = options.tolerance * (b_norm > 0.0 ? b_norm : 1.0);
  const int max_it = options.max_iterations;

  // Krylov basis (m+1 vectors) and the Hessenberg system.
  std::vector<aligned_vector<value_t>> v(static_cast<std::size_t>(m) + 1,
                                         aligned_vector<value_t>(n));
  std::vector<std::vector<double>> h(static_cast<std::size_t>(m) + 1,
                                     std::vector<double>(static_cast<std::size_t>(m), 0.0));
  std::vector<double> cs(static_cast<std::size_t>(m), 0.0);
  std::vector<double> sn(static_cast<std::size_t>(m), 0.0);
  std::vector<double> g(static_cast<std::size_t>(m) + 1, 0.0);
  // Hoisted out of the restart loop (the solver iteration must not allocate);
  // the back-substitution writes y[k-1..0] before any read, so no refill is
  // needed between restarts.
  std::vector<double> y(static_cast<std::size_t>(m), 0.0);
  aligned_vector<value_t> tmp(n);

  while (result.iterations < max_it) {
    // r = b - A x
    spmv_timer.reset();
    mv(x, tmp);
    result.spmv_seconds += spmv_timer.seconds();
    for (std::size_t i = 0; i < n; ++i) v[0][i] = b[i] - tmp[i];
    double beta = norm2(v[0]);
    result.residual_norm = beta;
    if (beta <= threshold) {
      result.converged = true;
      break;
    }
    for (std::size_t i = 0; i < n; ++i) v[0][i] /= beta;
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int k = 0;
    for (; k < m && result.iterations < max_it; ++k) {
      ++result.iterations;
      // Arnoldi step: w = A v_k, orthogonalize against v_0..v_k (MGS).
      spmv_timer.reset();
      mv(v[static_cast<std::size_t>(k)], tmp);
      result.spmv_seconds += spmv_timer.seconds();
      for (int i = 0; i <= k; ++i) {
        const double hik = dot(tmp, v[static_cast<std::size_t>(i)]);
        h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] = hik;
        axpy(-hik, v[static_cast<std::size_t>(i)], tmp);
      }
      const double hk1 = norm2(tmp);
      h[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(k)] = hk1;
      if (hk1 > 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
          v[static_cast<std::size_t>(k) + 1][i] = tmp[i] / hk1;
        }
      }

      // Apply previous Givens rotations to the new column.
      for (int i = 0; i < k; ++i) {
        const double t1 = cs[static_cast<std::size_t>(i)] *
                              h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] +
                          sn[static_cast<std::size_t>(i)] *
                              h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(k)];
        const double t2 = -sn[static_cast<std::size_t>(i)] *
                              h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] +
                          cs[static_cast<std::size_t>(i)] *
                              h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(k)];
        h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] = t1;
        h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(k)] = t2;
      }
      // New rotation to annihilate h[k+1][k].
      const double hkk = h[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)];
      const double hk1k = h[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(k)];
      const double denom = std::hypot(hkk, hk1k);
      if (denom == 0.0) break;
      cs[static_cast<std::size_t>(k)] = hkk / denom;
      sn[static_cast<std::size_t>(k)] = hk1k / denom;
      h[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)] = denom;
      h[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(k)] = 0.0;
      const double g_k = cs[static_cast<std::size_t>(k)] * g[static_cast<std::size_t>(k)];
      g[static_cast<std::size_t>(k) + 1] =
          -sn[static_cast<std::size_t>(k)] * g[static_cast<std::size_t>(k)];
      g[static_cast<std::size_t>(k)] = g_k;

      result.residual_norm = std::abs(g[static_cast<std::size_t>(k) + 1]);
      if (result.residual_norm <= threshold) {
        ++k;
        break;
      }
    }

    // Back-substitute y from H y = g, then x += V y.
    for (int i = k - 1; i >= 0; --i) {
      double acc = g[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < k; ++j) {
        acc -= h[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
               y[static_cast<std::size_t>(j)];
      }
      y[static_cast<std::size_t>(i)] =
          h[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] != 0.0
              ? acc / h[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)]
              : 0.0;
    }
    for (int i = 0; i < k; ++i) {
      axpy(y[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)], x);
    }

    if (result.residual_norm <= threshold) {
      result.converged = true;
      break;
    }
  }
  result.seconds = total.seconds();
  return result;
}

}  // namespace sparta::solvers
