#include "solvers/bicgstab.hpp"

#include <cmath>
#include <stdexcept>

#include "common/timer.hpp"

namespace sparta::solvers {

SolveResult bicgstab(const CsrMatrix& a, std::span<const value_t> b, std::span<value_t> x,
                     const BicgstabOptions& options, const SpmvFn* spmv) {
  if (a.nrows() != a.ncols()) throw std::invalid_argument{"bicgstab: matrix must be square"};
  const auto n = static_cast<std::size_t>(a.nrows());
  if (b.size() != n || x.size() != n) {
    throw std::invalid_argument{"bicgstab: vector size mismatch"};
  }
  const SpmvFn default_spmv = reference_spmv(a);
  const SpmvFn& mv = spmv != nullptr ? *spmv : default_spmv;

  SolveResult result;
  Timer total;
  Timer spmv_timer;

  aligned_vector<value_t> r(n), r0(n), p(n), v(n), s(n), t(n);

  // r = b - A x; r0 = r (shadow residual).
  spmv_timer.reset();
  mv(x, v);
  result.spmv_seconds += spmv_timer.seconds();
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - v[i];
  std::copy(r.begin(), r.end(), r0.begin());
  std::copy(r.begin(), r.end(), p.begin());

  const double b_norm = norm2(b);
  const double threshold = options.tolerance * (b_norm > 0.0 ? b_norm : 1.0);
  const int max_it = options.max_iterations;
  double rho = dot(r0, r);

  for (int it = 0; it < max_it; ++it) {
    result.residual_norm = norm2(r);
    if (result.residual_norm <= threshold) {
      result.converged = true;
      break;
    }
    if (rho == 0.0) break;  // breakdown

    spmv_timer.reset();
    mv(p, v);
    result.spmv_seconds += spmv_timer.seconds();
    const double r0v = dot(r0, v);
    if (r0v == 0.0) break;
    const double alpha = rho / r0v;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];

    if (norm2(s) <= threshold) {
      axpy(alpha, p, x);
      for (std::size_t i = 0; i < n; ++i) r[i] = s[i];
      result.iterations = it + 1;
      result.residual_norm = norm2(r);
      result.converged = true;
      break;
    }

    spmv_timer.reset();
    mv(s, t);
    result.spmv_seconds += spmv_timer.seconds();
    const double tt = dot(t, t);
    if (tt == 0.0) break;
    const double omega = dot(t, s) / tt;
    if (omega == 0.0) break;

    for (std::size_t i = 0; i < n; ++i) x[i] += alpha * p[i] + omega * s[i];
    for (std::size_t i = 0; i < n; ++i) r[i] = s[i] - omega * t[i];

    const double rho_next = dot(r0, r);
    const double beta = (rho_next / rho) * (alpha / omega);
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
    rho = rho_next;
    result.iterations = it + 1;
  }
  if (!result.converged) result.residual_norm = norm2(r);
  result.seconds = total.seconds();
  return result;
}

}  // namespace sparta::solvers
