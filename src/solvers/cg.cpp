#include "solvers/cg.hpp"

#include <cmath>
#include <stdexcept>

#include "common/timer.hpp"

namespace sparta::solvers {

SpmvFn reference_spmv(const CsrMatrix& a) {
  return [&a](std::span<const value_t> x, std::span<value_t> y) { spmv_reference(a, x, y); };
}

double dot(std::span<const value_t> a, std::span<const value_t> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const value_t> a) { return std::sqrt(dot(a, a)); }

void axpy(value_t alpha, std::span<const value_t> x, std::span<value_t> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void xpby(std::span<const value_t> x, value_t beta, std::span<value_t> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + beta * y[i];
}

SolveResult cg(const CsrMatrix& a, std::span<const value_t> b, std::span<value_t> x,
               const CgOptions& options, const SpmvFn* spmv) {
  if (a.nrows() != a.ncols()) throw std::invalid_argument{"cg: matrix must be square"};
  const auto n = static_cast<std::size_t>(a.nrows());
  if (b.size() != n || x.size() != n) throw std::invalid_argument{"cg: vector size mismatch"};

  const SpmvFn default_spmv = reference_spmv(a);
  const SpmvFn& mv = spmv != nullptr ? *spmv : default_spmv;

  // Jacobi preconditioner: M^{-1} = 1/diag(A).
  aligned_vector<value_t> inv_diag;
  if (options.jacobi) {
    inv_diag.assign(n, 1.0);
    const index_t nrows = a.nrows();
    for (index_t i = 0; i < nrows; ++i) {
      const auto cols = a.row_cols(i);
      const auto vals = a.row_vals(i);
      for (std::size_t j = 0; j < cols.size(); ++j) {
        if (cols[j] == i && vals[j] != 0.0) {
          inv_diag[static_cast<std::size_t>(i)] = 1.0 / vals[j];
          break;
        }
      }
    }
  }

  SolveResult result;
  Timer total;

  aligned_vector<value_t> r(n), p(n), ap(n), z(n);

  // r = b - A x
  Timer spmv_timer;
  mv(x, ap);
  result.spmv_seconds += spmv_timer.seconds();
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];

  auto precondition = [&](std::span<const value_t> in, std::span<value_t> out) {
    if (options.jacobi) {
      for (std::size_t i = 0; i < n; ++i) out[i] = inv_diag[i] * in[i];
    } else {
      std::copy(in.begin(), in.end(), out.begin());
    }
  };

  precondition(r, z);
  std::copy(z.begin(), z.end(), p.begin());
  double rz = dot(r, z);
  const double b_norm = norm2(b);
  const double threshold = options.tolerance * (b_norm > 0.0 ? b_norm : 1.0);
  const int max_it = options.max_iterations;

  for (int it = 0; it < max_it; ++it) {
    result.residual_norm = norm2(r);
    if (result.residual_norm <= threshold) {
      result.converged = true;
      break;
    }
    spmv_timer.reset();
    mv(p, ap);
    result.spmv_seconds += spmv_timer.seconds();

    const double p_ap = dot(p, ap);
    if (p_ap == 0.0) break;  // breakdown
    const double alpha = rz / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    precondition(r, z);
    const double rz_next = dot(r, z);
    xpby(z, rz_next / rz, p);
    rz = rz_next;
    result.iterations = it + 1;
  }
  if (!result.converged) result.residual_norm = norm2(r);
  result.seconds = total.seconds();
  return result;
}

}  // namespace sparta::solvers
