// BiCGSTAB (van der Vorst 1992) — smooth-converging Krylov solver for
// general nonsymmetric systems; with CG and GMRES it completes the solver
// family the paper's amortization context ("variations of the Conjugate
// Gradient and Generalized Minimal Residual methods") draws from. Two SpMVs
// per iteration, so optimizer gains amortize twice as fast as in CG.
#pragma once

#include "solvers/solver_common.hpp"

namespace sparta::solvers {

struct BicgstabOptions {
  int max_iterations = 1000;  // iterations (2 SpMVs each)
  double tolerance = 1e-8;    // on ||r|| / ||b||
};

/// Solve A x = b. `x` holds the initial guess on entry and the solution on
/// exit. `spmv` defaults to the serial reference kernel.
SolveResult bicgstab(const CsrMatrix& a, std::span<const value_t> b, std::span<value_t> x,
                     const BicgstabOptions& options = {}, const SpmvFn* spmv = nullptr);

}  // namespace sparta::solvers
