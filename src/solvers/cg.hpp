// Conjugate Gradient solver (optionally Jacobi-preconditioned) — the
// iterative-method context of the paper's amortization analysis (§IV-D):
// "Such solvers repeatedly call SpMV and usually require hundreds to
// thousands of iterations to converge."
#pragma once

#include "solvers/solver_common.hpp"

namespace sparta::solvers {

struct CgOptions {
  int max_iterations = 1000;
  double tolerance = 1e-8;  // on ||r|| / ||b||
  /// Jacobi (diagonal) preconditioning — models the preconditioned solvers
  /// the paper cites as the low-iteration-count regime.
  bool jacobi = false;
};

/// Solve A x = b for SPD A. `x` holds the initial guess on entry and the
/// solution on exit. `spmv` defaults to the serial reference kernel.
SolveResult cg(const CsrMatrix& a, std::span<const value_t> b, std::span<value_t> x,
               const CgOptions& options = {}, const SpmvFn* spmv = nullptr);

}  // namespace sparta::solvers
