// Restarted GMRES(m) — the second solver family of the paper's
// amortization context (variations of CG and GMRES, §IV-D). Works for
// general nonsymmetric systems; uses Arnoldi with modified Gram-Schmidt and
// Givens rotations for the least-squares update.
#pragma once

#include "solvers/solver_common.hpp"

namespace sparta::solvers {

struct GmresOptions {
  int restart = 30;          // Krylov subspace dimension m
  int max_iterations = 1000; // total SpMV budget across restarts
  double tolerance = 1e-8;   // on ||r|| / ||b||
};

/// Solve A x = b. `x` holds the initial guess on entry and the solution on
/// exit. `spmv` defaults to the serial reference kernel.
SolveResult gmres(const CsrMatrix& a, std::span<const value_t> b, std::span<value_t> x,
                  const GmresOptions& options = {}, const SpmvFn* spmv = nullptr);

}  // namespace sparta::solvers
