// Host STREAM-triad bandwidth probe (McCalpin-style), used to fill the
// `host` MachineSpec. The paper's Table III reports STREAM triad for each
// platform with DRAM-resident and LLC-resident working sets; we measure both
// on the host the same way.
#pragma once

namespace sparta {

struct StreamResult {
  /// Triad bandwidth with a DRAM-sized working set (GB/s).
  double main_gbs = 0.0;
  /// Triad bandwidth with an LLC-sized working set (GB/s).
  double llc_gbs = 0.0;
};

/// Run a(i) = b(i) + s*c(i) over large and small arrays and report the best
/// of `repeats` timings. Cheap (tens of ms) and allocation-bounded.
StreamResult stream_triad_probe(int repeats = 5);

}  // namespace sparta
