// Set-associative LRU cache model.
//
// The execution simulator replays the x-vector access stream of each thread
// through one of these to count misses — the quantity that separates the
// ML (latency-bound) class from everything else. Streaming arrays
// (values/colind/rowptr) bypass the model; their traffic is compulsory and
// is accounted analytically.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace sparta {

/// LRU set-associative cache of cache-line granularity.
class SetAssocCache {
 public:
  /// Capacity is rounded down to a power-of-two number of sets. Associativity
  /// defaults to 8-way, which is representative of the modeled platforms.
  SetAssocCache(std::size_t capacity_bytes, std::size_t line_bytes = 64, int ways = 8);

  /// Touch the line containing byte address `addr`; returns true on hit.
  bool access(std::uint64_t addr);

  /// Forget all contents (counters are kept).
  void clear();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::size_t sets() const { return nsets_; }
  [[nodiscard]] int ways() const { return ways_; }
  [[nodiscard]] std::size_t line_bytes() const { return line_bytes_; }
  [[nodiscard]] std::size_t capacity_bytes() const { return nsets_ * ways_ * line_bytes_; }

  void reset_counters() { hits_ = misses_ = 0; }

 private:
  std::size_t line_bytes_;
  std::size_t nsets_;
  int ways_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  // One entry per way per set: tag (line address) and last-use tick.
  struct Line {
    std::uint64_t tag = ~std::uint64_t{0};
    std::uint64_t last_use = 0;
  };
  std::vector<Line> lines_;
};

}  // namespace sparta
