#include "machine/cache_model.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace sparta {

SetAssocCache::SetAssocCache(std::size_t capacity_bytes, std::size_t line_bytes, int ways)
    : line_bytes_(line_bytes), ways_(ways) {
  if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0) {
    throw std::invalid_argument{"cache: line size must be a power of two"};
  }
  if (ways <= 0) throw std::invalid_argument{"cache: ways must be positive"};
  const std::size_t lines = std::max<std::size_t>(capacity_bytes / line_bytes, ways_);
  nsets_ = std::bit_floor(lines / static_cast<std::size_t>(ways_));
  nsets_ = std::max<std::size_t>(nsets_, 1);
  lines_.assign(nsets_ * static_cast<std::size_t>(ways_), Line{});
}

bool SetAssocCache::access(std::uint64_t addr) {
  const std::uint64_t tag = addr / line_bytes_;
  const std::size_t set = static_cast<std::size_t>(tag) & (nsets_ - 1);
  Line* base = lines_.data() + set * static_cast<std::size_t>(ways_);
  ++tick_;
  Line* victim = base;
  for (int w = 0; w < ways_; ++w) {
    if (base[w].tag == tag) {
      base[w].last_use = tick_;
      ++hits_;
      return true;
    }
    if (base[w].last_use < victim->last_use) victim = &base[w];
  }
  victim->tag = tag;
  victim->last_use = tick_;
  ++misses_;
  return false;
}

void SetAssocCache::clear() {
  std::fill(lines_.begin(), lines_.end(), Line{});
  tick_ = 0;
}

}  // namespace sparta
