#include "machine/machine_spec.hpp"

#include <omp.h>

#include <algorithm>

#include "machine/stream_probe.hpp"

namespace sparta {

namespace {
constexpr std::size_t scaled(std::size_t bytes) {
  return static_cast<std::size_t>(static_cast<double>(bytes) * kCacheScale);
}
}  // namespace

std::size_t MachineSpec::x_cache_bytes_per_thread() const {
  const std::size_t l2_per_thread = smt > 0 ? l2_slice_bytes / static_cast<std::size_t>(smt) : 0;
  const std::size_t llc_per_thread =
      threads() > 0 ? llc_bytes / static_cast<std::size_t>(threads()) : 0;
  const auto total = static_cast<double>(l1_bytes + l2_per_thread + llc_per_thread);
  return std::max<std::size_t>(static_cast<std::size_t>(0.5 * total), 2 * cache_line_bytes);
}

MachineSpec knc() {
  MachineSpec m;
  m.name = "KNC";
  m.cores = 57;
  m.smt = 4;
  m.clock_ghz = 1.10;
  m.issue_penalty = 2.0;  // in-order Pentium-class cores
  m.l1_bytes = scaled(32ull << 10);
  m.l2_slice_bytes = scaled(512ull << 10);   // 57 x 512 KiB = 30 MiB aggregate
  m.llc_bytes = scaled(30ull << 20);
  m.stream_main_gbs = 128.0;
  m.stream_llc_gbs = 140.0;
  m.core_bw_gbs = 4.5;
  m.vector_bw_boost = 2.0;   // scalar loads starve the in-order pipeline
  m.dram_latency_ns = 300.0;  // an order of magnitude above multicores (paper SIV-C)
  m.llc_latency_ns = 80.0;
  m.latency_overlap = 0.30;   // in-order; SMT4 is the only latency-hiding tool
  m.simd_bits = 512;
  m.gather_cpe = 1.0;         // microcoded vgatherd: ~1 uop per distinct line
  return m;
}

MachineSpec knl() {
  MachineSpec m;
  m.name = "KNL";
  m.cores = 68;
  m.smt = 4;
  m.clock_ghz = 1.40;
  m.issue_penalty = 1.3;  // 2-wide OoO Silvermont-class cores
  m.l1_bytes = scaled(32ull << 10);
  m.l2_slice_bytes = scaled(512ull << 10);   // 1 MiB per 2-core tile
  m.llc_bytes = scaled(34ull << 20);
  m.stream_main_gbs = 395.0;  // flat-mode MCDRAM
  m.stream_llc_gbs = 570.0;
  m.core_bw_gbs = 12.0;
  m.vector_bw_boost = 1.3;
  m.dram_latency_ns = 170.0;
  m.llc_latency_ns = 50.0;
  m.latency_overlap = 0.50;
  m.simd_bits = 512;
  m.gather_cpe = 0.8;         // AVX-512 hardware gather
  return m;
}

MachineSpec broadwell() {
  MachineSpec m;
  m.name = "Broadwell";
  m.cores = 22;
  m.smt = 2;
  m.clock_ghz = 2.20;
  m.issue_penalty = 1.0;  // aggressive out-of-order core
  m.l1_bytes = scaled(32ull << 10);
  m.l2_slice_bytes = scaled(256ull << 10);
  m.llc_bytes = scaled(55ull << 20);
  m.stream_main_gbs = 60.0;
  m.stream_llc_gbs = 200.0;
  m.core_bw_gbs = 12.0;
  m.vector_bw_boost = 1.0;   // OoO core already saturates its bandwidth
  m.dram_latency_ns = 90.0;
  m.llc_latency_ns = 25.0;
  m.latency_overlap = 0.85;   // deep OoO window + L2 prefetchers
  m.simd_bits = 256;
  m.gather_cpe = 0.7;
  return m;
}

const std::vector<MachineSpec>& paper_platforms() {
  static const std::vector<MachineSpec> kPlatforms{knc(), knl(), broadwell()};
  return kPlatforms;
}

MachineSpec host_machine(bool measure_bandwidth) {
  MachineSpec m;
  m.name = "host";
  m.cores = std::max(1, omp_get_max_threads());
  m.smt = 1;
  m.clock_ghz = 2.0;
  m.issue_penalty = 1.0;
  m.l1_bytes = 32ull << 10;
  m.l2_slice_bytes = 512ull << 10;
  m.llc_bytes = 8ull << 20;
  m.stream_main_gbs = 10.0;
  m.stream_llc_gbs = 30.0;
  m.core_bw_gbs = 10.0;
  m.dram_latency_ns = 100.0;
  m.llc_latency_ns = 30.0;
  m.latency_overlap = 0.85;
  m.simd_bits = 256;
  if (measure_bandwidth) {
    const StreamResult r = stream_triad_probe();
    if (r.main_gbs > 0.0) m.stream_main_gbs = r.main_gbs;
    if (r.llc_gbs > 0.0) m.stream_llc_gbs = r.llc_gbs;
  }
  return m;
}

}  // namespace sparta
