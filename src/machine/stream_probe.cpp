#include "machine/stream_probe.hpp"

#include <algorithm>
#include <cstddef>

#include "common/timer.hpp"
#include "common/types.hpp"

namespace sparta {

namespace {

/// One triad sweep; returns GB/s for the best repetition.
double triad_gbs(std::size_t n, int repeats) {
  aligned_vector<double> a(n, 0.0), b(n, 1.0), c(n, 2.0);
  const double scalar = 3.0;
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Timer t;
#pragma omp parallel for default(none) shared(a, b, c, scalar, n) schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
      a[static_cast<std::size_t>(i)] =
          b[static_cast<std::size_t>(i)] + scalar * c[static_cast<std::size_t>(i)];
    }
    const double sec = t.seconds();
    // 3 arrays x 8 bytes per element move per iteration.
    const double gbs = 3.0 * 8.0 * static_cast<double>(n) / sec * 1e-9;
    best = std::max(best, gbs);
  }
  // Keep the result observable so the loop cannot be elided.
  volatile double sink = a[n / 2];
  (void)sink;
  return best;
}

}  // namespace

StreamResult stream_triad_probe(int repeats) {
  StreamResult r;
  // 64 MiB working set: comfortably DRAM-resident on any current host.
  r.main_gbs = triad_gbs((64ull << 20) / (3 * sizeof(double)), repeats);
  // 1.5 MiB working set: L2/L3-resident.
  r.llc_gbs = triad_gbs((3ull << 19) / (3 * sizeof(double)), repeats * 4);
  return r;
}

}  // namespace sparta
