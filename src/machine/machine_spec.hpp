// Platform descriptions — paper Table III plus the micro-architectural
// constants the execution model needs (miss latency, latency overlap, SMT).
//
// The reproduction container has a single CPU core, so the three paper
// platforms are *modeled*: every figure-generating experiment runs on the
// analytical simulator parameterized by these specs. Because the generated
// matrix suite is roughly 16x smaller than the paper's SuiteSparse
// selection (to fit container memory and simulation budget), cache
// capacities are scaled down by the same factor, preserving each matrix's
// relation to the cache hierarchy (see DESIGN.md, substitutions).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sparta {

/// Cache-capacity scale factor applied to the paper platforms (see above).
inline constexpr double kCacheScale = 1.0 / 16.0;

/// One modeled (or measured) execution platform.
struct MachineSpec {
  std::string name;

  // --- Topology ---------------------------------------------------------
  int cores = 1;
  /// Hardware threads used per core (paper: 4 on both Phis, 2 on Broadwell).
  int smt = 1;
  /// Total threads used by a parallel kernel.
  [[nodiscard]] int threads() const { return cores * smt; }

  // --- Clock & issue ----------------------------------------------------
  double clock_ghz = 1.0;
  /// Multiplier on kernel cycle costs capturing issue quality
  /// (in-order KNC pays ~2x the cycles of an aggressive OoO core).
  double issue_penalty = 1.0;

  // --- Cache hierarchy (bytes, already kCacheScale-scaled for models) ----
  std::size_t l1_bytes = 32 << 10;
  /// Private-per-core slice of the mid-level cache.
  std::size_t l2_slice_bytes = 0;
  /// Shared last-level capacity (aggregate L2 on the Phis, L3 on Broadwell).
  std::size_t llc_bytes = 0;
  std::size_t cache_line_bytes = 64;

  // --- Memory system ----------------------------------------------------
  /// STREAM-triad sustainable bandwidth, working set in DRAM (GB/s).
  double stream_main_gbs = 10.0;
  /// STREAM-triad bandwidth when the working set fits in the LLC (GB/s).
  double stream_llc_gbs = 20.0;
  /// Bandwidth one core can draw by itself (GB/s).
  double core_bw_gbs = 10.0;
  /// Multiplier on core_bw when the kernel uses vector memory operations —
  /// on in-order cores scalar loads cannot keep the load/store unit busy,
  /// so vectorization raises a single thread's achievable bandwidth.
  double vector_bw_boost = 1.0;
  /// Average DRAM miss latency (ns).
  double dram_latency_ns = 100.0;
  /// Average LLC hit latency for a private-cache miss (ns).
  double llc_latency_ns = 30.0;
  /// Fraction of miss latency hidden by out-of-order execution, MLP and SMT
  /// interleaving (0 = fully exposed, 1 = fully hidden).
  double latency_overlap = 0.5;

  // --- SIMD -------------------------------------------------------------
  int simd_bits = 256;
  [[nodiscard]] int simd_doubles() const { return simd_bits / 64; }
  /// Extra cycles per element for a vector gather relative to a unit-stride
  /// vector load (Phi gathers are microcoded and expensive).
  double gather_cpe = 1.0;

  // --- Derived helpers ----------------------------------------------------
  /// Effective private cache capacity available to x-vector reuse per
  /// thread: L1 + this thread's share of the private L2 slice and of the
  /// shared LLC. The streaming arrays (values/colind) continuously evict,
  /// so only a fraction is usable; the 0.5 factor models that pressure.
  [[nodiscard]] std::size_t x_cache_bytes_per_thread() const;

  /// Values of `value_t` per cache line.
  [[nodiscard]] int values_per_line() const {
    return static_cast<int>(cache_line_bytes / sizeof(double));
  }
};

/// Paper Table III platforms (cache sizes pre-scaled by kCacheScale).
MachineSpec knc();        // Intel Xeon Phi 3120P (Knights Corner)
MachineSpec knl();        // Intel Xeon Phi 7250 (Knights Landing, flat HBM)
MachineSpec broadwell();  // Intel Xeon E5-2699 v4

/// All three modeled platforms, in paper order.
const std::vector<MachineSpec>& paper_platforms();

/// A spec describing the actual host this binary runs on (topology from
/// OpenMP, bandwidth from the STREAM probe when `measure_bandwidth`).
MachineSpec host_machine(bool measure_bandwidth = false);

}  // namespace sparta
