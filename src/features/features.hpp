// Structural feature extraction — paper Table I.
//
// These are the inputs of the feature-guided classifier. Two natural subsets
// exist by extraction cost: the O(N) features (row statistics) and the full
// O(NNZ) set (adds clustering/miss estimates that need a pass over every
// nonzero). Paper Table IV evaluates one classifier per subset.
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace sparta {

/// Identifiers for every Table I feature, in a fixed order used by the flat
/// vector representation consumed by the decision tree.
enum class Feature : int {
  kSize = 0,       // 1 if the SpMV working set fits in the LLC, else 0 — Θ(1)
  kDensity,        // NNZ / N^2 — Θ(1)
  kNnzMin,         // min row nnz — Θ(N)
  kNnzMax,         // max row nnz — Θ(N)
  kNnzAvg,         // mean row nnz — Θ(N)
  kNnzSd,          // stddev of row nnz — Θ(2N)
  kBwMin,          // min row bandwidth — Θ(N)
  kBwMax,          // max row bandwidth — Θ(N)
  kBwAvg,          // mean row bandwidth — Θ(N)
  kBwSd,           // stddev of row bandwidth — Θ(2N)
  kScatterAvg,     // mean of nnz_i / bw_i — Θ(N)
  kScatterSd,      // stddev of nnz_i / bw_i — Θ(2N)
  kClusteringAvg,  // mean of ngroups_i / nnz_i — Θ(NNZ)
  kMissesAvg,      // mean naive cache-miss count per row — Θ(NNZ)
  kCount
};

inline constexpr int kNumFeatures = static_cast<int>(Feature::kCount);

/// Human-readable name (matches the paper's notation).
std::string_view feature_name(Feature f);

/// Extracted feature vector for one matrix.
struct FeatureVector {
  std::array<double, kNumFeatures> v{};

  [[nodiscard]] double operator[](Feature f) const { return v[static_cast<std::size_t>(f)]; }
  double& operator[](Feature f) { return v[static_cast<std::size_t>(f)]; }
};

/// Parameters of the extraction that depend on the target platform.
struct FeatureExtractionConfig {
  /// Last-level cache capacity used for the `size` feature (bytes).
  std::size_t llc_bytes = 32ull << 20;
  /// Matrix values per cache line for the naive miss estimate.
  int values_per_line = 8;
};

/// Extract all Table I features in one pass over the matrix.
FeatureVector extract_features(const CsrMatrix& m, const FeatureExtractionConfig& cfg = {});

/// The paper's two feature subsets (Table IV):
/// O(N):   nnz_{min,max,sd}, bw_avg, scatter_{avg,sd}
/// O(NNZ): size, bw_{avg,sd}, nnz_{min,max,avg,sd}, misses_avg, scatter_sd
std::vector<Feature> feature_subset_linear();
std::vector<Feature> feature_subset_full();

/// Project a FeatureVector onto a subset, producing a flat vector in subset
/// order (the representation the decision tree trains on).
std::vector<double> project(const FeatureVector& fv, const std::vector<Feature>& subset);

}  // namespace sparta
