#include "features/features.hpp"

#include "common/statistics.hpp"
#include "sparse/properties.hpp"

namespace sparta {

std::string_view feature_name(Feature f) {
  switch (f) {
    case Feature::kSize: return "size";
    case Feature::kDensity: return "density";
    case Feature::kNnzMin: return "nnz_min";
    case Feature::kNnzMax: return "nnz_max";
    case Feature::kNnzAvg: return "nnz_avg";
    case Feature::kNnzSd: return "nnz_sd";
    case Feature::kBwMin: return "bw_min";
    case Feature::kBwMax: return "bw_max";
    case Feature::kBwAvg: return "bw_avg";
    case Feature::kBwSd: return "bw_sd";
    case Feature::kScatterAvg: return "scatter_avg";
    case Feature::kScatterSd: return "scatter_sd";
    case Feature::kClusteringAvg: return "clustering_avg";
    case Feature::kMissesAvg: return "misses_avg";
    case Feature::kCount: break;
  }
  return "?";
}

FeatureVector extract_features(const CsrMatrix& m, const FeatureExtractionConfig& cfg) {
  FeatureVector fv;
  const RowScan scan = scan_rows(m, cfg.values_per_line);

  fv[Feature::kSize] = m.spmv_working_set_bytes() <= cfg.llc_bytes ? 1.0 : 0.0;
  const double n = static_cast<double>(m.nrows());
  fv[Feature::kDensity] = n > 0.0 ? static_cast<double>(m.nnz()) / (n * n) : 0.0;

  fv[Feature::kNnzMin] = stats::min(scan.nnz);
  fv[Feature::kNnzMax] = stats::max(scan.nnz);
  fv[Feature::kNnzAvg] = stats::mean(scan.nnz);
  fv[Feature::kNnzSd] = stats::stddev(scan.nnz);

  fv[Feature::kBwMin] = stats::min(scan.bandwidth);
  fv[Feature::kBwMax] = stats::max(scan.bandwidth);
  fv[Feature::kBwAvg] = stats::mean(scan.bandwidth);
  fv[Feature::kBwSd] = stats::stddev(scan.bandwidth);

  fv[Feature::kScatterAvg] = stats::mean(scan.scatter);
  fv[Feature::kScatterSd] = stats::stddev(scan.scatter);
  fv[Feature::kClusteringAvg] = stats::mean(scan.clustering);
  fv[Feature::kMissesAvg] = stats::mean(scan.misses);
  return fv;
}

std::vector<Feature> feature_subset_linear() {
  return {Feature::kNnzMin, Feature::kNnzMax,     Feature::kNnzSd,
          Feature::kBwAvg,  Feature::kScatterAvg, Feature::kScatterSd};
}

std::vector<Feature> feature_subset_full() {
  return {Feature::kSize,   Feature::kBwAvg,  Feature::kBwSd,      Feature::kNnzMin,
          Feature::kNnzMax, Feature::kNnzAvg, Feature::kNnzSd,     Feature::kMissesAvg,
          Feature::kScatterSd};
}

std::vector<double> project(const FeatureVector& fv, const std::vector<Feature>& subset) {
  std::vector<double> out;
  out.reserve(subset.size());
  for (Feature f : subset) out.push_back(fv[f]);
  return out;
}

}  // namespace sparta
